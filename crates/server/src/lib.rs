//! # ode-server
//!
//! A concurrent network front-end over one shared [`Database`]: the
//! paper's "database environment" grown into a multi-client serving
//! layer. Any number of remote shells (`ode-shell --connect`) execute
//! statements — DDL, `forall` queries, DML, `explain`, meta-commands —
//! against the same engine, each connection running its own
//! [`ode_shell::Session`] so the remote surface is exactly the local one.
//!
//! Architecture (DESIGN.md §7):
//!
//! * **Wire protocol** — length-prefixed frames with typed messages and a
//!   version handshake (crate `ode-wire`; re-exported as [`wire`]).
//! * **Sessions** — thread-per-connection over a blocking `TcpListener`.
//!   Mutating statements serialize behind the engine's writer gate, so
//!   those handler threads queue at `begin()`. Read-only statements
//!   (`forall`, `explain`, `.show`, `.versions`) run as snapshot read
//!   transactions ([`Database::begin_read`]) that never touch the gate,
//!   so query-heavy connections scale across threads (DESIGN.md §8);
//!   the serving layer's job is fairness and protection.
//! * **Decoupled triggers & live subscriptions** — the server attaches
//!   an [`ode_sched::Scheduler`] to the engine, so trigger actions fired
//!   by client commits run asynchronously on a worker pool instead of
//!   inline in the committing request. A v3 client can register a
//!   predicate over a cluster (`ControlOp::Subscribe`) and receive
//!   unsolicited `Push` frames for matching commits, delivered through a
//!   per-connection bounded outbox drained between requests (slow
//!   consumers lose pushes, never corrupt framing; drops are counted).
//! * **Admission control** — a connection-count semaphore: past
//!   [`ServerConfig::max_connections`], new connections are refused with
//!   a typed `Admission` error before any engine work happens. Oversized
//!   request frames are refused with `TooLarge`; requests whose execution
//!   exceeds [`ServerConfig::request_timeout`] are answered with a typed
//!   `Timeout` error (enforcement is post-hoc — the engine is not
//!   preemptible — so the budget bounds *reporting*, not execution).
//! * **Graceful shutdown** — [`ServerHandle::shutdown`] stops accepting,
//!   lets every in-flight request finish and its response flush, sends
//!   `Goodbye` to idle connections, and drains within
//!   [`ServerConfig::drain_timeout`].
//! * **Telemetry** — [`ode_obs::ServerTelemetry`] counters (accepted,
//!   rejected-at-admission, timed-out, bytes in/out, request-latency
//!   histogram), surfaced over the wire via the `.server` control op.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use ode_core::Database;
use ode_obs::{ServerSnapshot, ServerTelemetry};
use ode_sched::{SchedConfig, Scheduler};
use ode_wire::protocol::{write_frame, ErrorKind, Response};

mod conn;
mod metrics;

/// The client half of the wire (re-export of `ode-wire`'s client, so
/// hosts can write `ode_server::client::Client`).
pub mod client {
    pub use ode_wire::client::{Client, ClientError, PushEvent, RemoteLine};
}

/// The wire protocol (re-export of `ode-wire`).
pub use ode_wire as wire;

/// Serving-layer tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Admission-control limit: connections past this are refused with a
    /// typed `Admission` error.
    pub max_connections: usize,
    /// Largest accepted request frame; larger ones are refused with a
    /// typed `TooLarge` error and the connection is closed.
    pub max_request_bytes: u32,
    /// Per-request execution budget; requests that exceed it are
    /// answered with a typed `Timeout` error instead of their output.
    pub request_timeout: Duration,
    /// How long a connection may sit idle (no complete request arriving)
    /// before the server closes it.
    pub idle_timeout: Duration,
    /// How long [`ServerHandle::shutdown`] waits for in-flight
    /// connections to finish before giving up on them.
    pub drain_timeout: Duration,
    /// Internal tick: how often blocked reads/accepts re-check the
    /// shutdown flag. Smaller is more responsive, larger is cheaper.
    pub poll_interval: Duration,
    /// When set, bind a plain-HTTP listener here that answers
    /// `GET /metrics` with the Prometheus exposition (text format
    /// 0.0.4). `None` (the default) serves metrics only over the wire
    /// protocol's `Metrics` control op.
    pub metrics_addr: Option<SocketAddr>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            max_request_bytes: 1 << 20,
            request_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(300),
            drain_timeout: Duration::from_secs(10),
            poll_interval: Duration::from_millis(20),
            metrics_addr: None,
        }
    }
}

/// Shared server state: the engine, the counters, and the admission and
/// shutdown coordination points.
pub(crate) struct ServerState {
    pub db: Arc<Database>,
    pub sched: Arc<Scheduler>,
    pub cfg: ServerConfig,
    pub tel: ServerTelemetry,
    pub shutdown: AtomicBool,
    pub active: AtomicUsize,
}

impl ServerState {
    /// Try to take an admission slot. Lock-free CAS loop: never admits
    /// past `max_connections` even under concurrent accepts.
    fn try_admit(&self) -> bool {
        let mut cur = self.active.load(Ordering::Relaxed);
        loop {
            if cur >= self.cfg.max_connections {
                return false;
            }
            match self.active.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    fn release(&self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
        self.tel.active_connections.dec();
    }

    pub(crate) fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

/// Releases the admission slot when a connection thread ends, however it
/// ends (EOF, protocol error, panic).
struct SlotGuard(Arc<ServerState>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// The server entry point: [`Server::bind`] starts accepting and returns
/// a [`ServerHandle`].
pub struct Server;

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// the accept loop over `db`.
    pub fn bind(
        db: Arc<Database>,
        cfg: ServerConfig,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        // Decouple trigger actions from client commits: with the
        // scheduler attached, a mutating request returns as soon as its
        // own transaction is durable, and fired actions drain on the
        // scheduler's worker pool. The same scheduler carries live
        // subscriptions registered over the wire.
        let sched = Scheduler::attach(Arc::clone(&db), SchedConfig::default());
        let state = Arc::new(ServerState {
            db,
            sched,
            cfg,
            tel: ServerTelemetry::default(),
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
        });
        let metrics_addr = match state.cfg.metrics_addr {
            Some(maddr) => {
                let mlistener = TcpListener::bind(maddr)?;
                mlistener.set_nonblocking(true)?;
                let bound = mlistener.local_addr()?;
                let metrics_state = Arc::clone(&state);
                thread::Builder::new()
                    .name("ode-server-metrics".into())
                    .spawn(move || metrics::metrics_loop(mlistener, metrics_state))?;
                Some(bound)
            }
            None => None,
        };
        let accept_state = Arc::clone(&state);
        let accept = thread::Builder::new()
            .name("ode-server-accept".into())
            .spawn(move || accept_loop(listener, accept_state))?;
        Ok(ServerHandle {
            addr,
            metrics_addr,
            state,
            accept: Some(accept),
        })
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    loop {
        if state.draining() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if state.draining() {
                    state.tel.rejected_shutdown.inc();
                    refuse(
                        stream,
                        ErrorKind::Shutdown,
                        "server is draining for shutdown",
                    );
                    continue;
                }
                if !state.try_admit() {
                    state.tel.rejected_admission.inc();
                    refuse(
                        stream,
                        ErrorKind::Admission,
                        &format!(
                            "server at capacity ({} connections)",
                            state.cfg.max_connections
                        ),
                    );
                    continue;
                }
                state.tel.accepted.inc();
                state.tel.active_connections.inc();
                state
                    .tel
                    .max_concurrent
                    .observe(state.active.load(Ordering::Relaxed) as u64);
                let conn_state = Arc::clone(&state);
                let _ = thread::Builder::new()
                    .name("ode-server-conn".into())
                    .spawn(move || {
                        let _slot = SlotGuard(Arc::clone(&conn_state));
                        conn::serve(stream, &conn_state);
                    });
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                thread::sleep(state.cfg.poll_interval);
            }
            // Transient accept failures (EMFILE, aborted connections):
            // back off and keep serving.
            Err(_) => thread::sleep(state.cfg.poll_interval),
        }
    }
}

/// Best-effort typed refusal of a connection that never got a session.
fn refuse(mut stream: TcpStream, kind: ErrorKind, message: &str) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let payload = Response::Error {
        kind,
        message: message.to_string(),
    }
    .encode();
    let _ = write_frame(&mut stream, &payload);
    let _ = stream.flush();
}

/// What [`ServerHandle::shutdown`] observed while draining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Every connection finished within the drain budget; no in-flight
    /// request was dropped.
    pub drained: bool,
    /// Connections still open when the drain budget expired (0 when
    /// `drained`).
    pub connections_remaining: usize,
}

/// A running server. Dropping the handle initiates shutdown without
/// waiting for the drain; call [`ServerHandle::shutdown`] to drain
/// deliberately.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound HTTP `/metrics` address, when
    /// [`ServerConfig::metrics_addr`] was set (useful with port 0).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The shared engine behind the server.
    pub fn database(&self) -> Arc<Database> {
        Arc::clone(&self.state.db)
    }

    /// The trigger scheduler attached to the engine for the server's
    /// lifetime (queue inspection, suspend/resume, dead letters).
    pub fn scheduler(&self) -> Arc<Scheduler> {
        Arc::clone(&self.state.sched)
    }

    /// Connections currently admitted.
    pub fn active_connections(&self) -> usize {
        self.state.active.load(Ordering::Relaxed)
    }

    /// Snapshot the serving-layer telemetry.
    pub fn server_stats(&self) -> ServerSnapshot {
        self.state.tel.snapshot()
    }

    /// Graceful shutdown: stop accepting, let in-flight requests finish
    /// and their responses flush, close idle connections, and wait up to
    /// [`ServerConfig::drain_timeout`] for every connection to drain.
    pub fn shutdown(mut self) -> DrainReport {
        self.state.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let deadline = Instant::now() + self.state.cfg.drain_timeout;
        while self.state.active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            thread::sleep(self.state.cfg.poll_interval);
        }
        let remaining = self.state.active.load(Ordering::Acquire);
        // Let queued trigger actions finish, then restore inline firing
        // so the database keeps its paper semantics after the server is
        // gone. A bounded wait: dead-lettered work is already accounted.
        self.state.sched.wait_idle(self.state.cfg.drain_timeout);
        self.state.sched.detach();
        DrainReport {
            drained: remaining == 0,
            connections_remaining: remaining,
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}
