//! `ode-server` — serve one Ode database to many remote shells.
//!
//! ```text
//! ode-server --memory --listen 127.0.0.1:7340
//! ode-server /path/to/db --listen 0.0.0.0:7340 --max-connections 128
//! ```
//!
//! Prints `listening on <addr>` once ready. On SIGTERM or SIGINT the
//! server drains gracefully: it stops accepting, finishes every in-flight
//! request, and exits 0 once drained (1 if the drain budget expired with
//! connections still open).

use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ode_core::Database;
use ode_server::{Server, ServerConfig};

static TERMINATE: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        // Only async-signal-safe work here: one atomic store.
        TERMINATE.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

const USAGE: &str = "usage: ode-server [--memory | <directory>] [--listen HOST:PORT]
                  [--max-connections N] [--request-timeout-ms MS]
                  [--max-request-bytes N] [--drain-timeout-ms MS]";

fn fail(msg: &str) -> ! {
    eprintln!("ode-server: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(1);
}

fn main() {
    let mut listen = "127.0.0.1:7340".to_string();
    let mut dir: Option<String> = None;
    let mut memory = false;
    let mut cfg = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--memory" => memory = true,
            "--listen" => listen = value("--listen"),
            "--max-connections" => {
                cfg.max_connections = value("--max-connections")
                    .parse()
                    .unwrap_or_else(|_| fail("--max-connections must be a number"))
            }
            "--request-timeout-ms" => {
                let ms: u64 = value("--request-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--request-timeout-ms must be a number"));
                cfg.request_timeout = Duration::from_millis(ms);
            }
            "--drain-timeout-ms" => {
                let ms: u64 = value("--drain-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--drain-timeout-ms must be a number"));
                cfg.drain_timeout = Duration::from_millis(ms);
            }
            "--max-request-bytes" => {
                cfg.max_request_bytes = value("--max-request-bytes")
                    .parse()
                    .unwrap_or_else(|_| fail("--max-request-bytes must be a number"))
            }
            other if other.starts_with('-') => fail(&format!("unknown flag `{other}`")),
            other => {
                if dir.is_some() {
                    fail("more than one database directory given");
                }
                dir = Some(other.to_string());
            }
        }
    }

    let db = match (&dir, memory) {
        (Some(_), true) => fail("--memory conflicts with a database directory"),
        (Some(d), false) => match Database::open(Path::new(d)) {
            Ok(db) => {
                eprintln!("ode-server: database at {d}");
                db
            }
            Err(e) => {
                eprintln!("ode-server: cannot open {d}: {e}");
                std::process::exit(1);
            }
        },
        (None, _) => {
            eprintln!("ode-server: in-memory database (pass a directory to persist)");
            Database::in_memory()
        }
    };

    install_signal_handlers();
    let handle = match Server::bind(Arc::new(db), cfg.clone(), listen.as_str()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("ode-server: cannot bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    // Readiness line on stdout so scripts can wait for it.
    println!(
        "listening on {} (max {} connections)",
        handle.addr(),
        cfg.max_connections
    );
    let _ = std::io::stdout().flush();

    while !TERMINATE.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }

    eprintln!("ode-server: draining…");
    let report = handle.shutdown();
    if report.drained {
        eprintln!("ode-server: drained cleanly");
        std::process::exit(0);
    }
    eprintln!(
        "ode-server: drain budget expired with {} connection(s) open",
        report.connections_remaining
    );
    std::process::exit(1);
}
