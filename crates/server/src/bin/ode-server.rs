//! `ode-server` — serve one Ode database to many remote shells.
//!
//! ```text
//! ode-server --memory --listen 127.0.0.1:7340
//! ode-server /path/to/db --listen 0.0.0.0:7340 --max-connections 128
//! ```
//!
//! Prints `listening on <addr>` once ready. On SIGTERM or SIGINT the
//! server drains gracefully: it stops accepting, finishes every in-flight
//! request, and exits 0 once drained (1 if the drain budget expired with
//! connections still open).

use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ode_core::obs::logging::{self, LogLevel};
use ode_core::{Database, FlightRecorder};
use ode_server::{Server, ServerConfig};

static TERMINATE: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        // Only async-signal-safe work here: one atomic store.
        TERMINATE.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

const USAGE: &str = "usage: ode-server [--memory | <directory>] [--listen HOST:PORT]
                  [--max-connections N] [--request-timeout-ms MS]
                  [--max-request-bytes N] [--drain-timeout-ms MS]
                  [--metrics-addr HOST:PORT] [--log-level error|warn|info|debug]";

fn fail(msg: &str) -> ! {
    eprintln!("ode-server: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(1);
}

fn main() {
    let mut listen = "127.0.0.1:7340".to_string();
    let mut dir: Option<String> = None;
    let mut memory = false;
    let mut cfg = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--memory" => memory = true,
            "--listen" => listen = value("--listen"),
            "--max-connections" => {
                cfg.max_connections = value("--max-connections")
                    .parse()
                    .unwrap_or_else(|_| fail("--max-connections must be a number"))
            }
            "--request-timeout-ms" => {
                let ms: u64 = value("--request-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--request-timeout-ms must be a number"));
                cfg.request_timeout = Duration::from_millis(ms);
            }
            "--drain-timeout-ms" => {
                let ms: u64 = value("--drain-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--drain-timeout-ms must be a number"));
                cfg.drain_timeout = Duration::from_millis(ms);
            }
            "--max-request-bytes" => {
                cfg.max_request_bytes = value("--max-request-bytes")
                    .parse()
                    .unwrap_or_else(|_| fail("--max-request-bytes must be a number"))
            }
            "--metrics-addr" => {
                let addr = value("--metrics-addr");
                cfg.metrics_addr = Some(
                    addr.parse()
                        .unwrap_or_else(|_| fail("--metrics-addr must be HOST:PORT")),
                );
            }
            "--log-level" => {
                let name = value("--log-level");
                let level = LogLevel::parse(&name)
                    .unwrap_or_else(|| fail("--log-level must be error|warn|info|debug"));
                logging::set_level(level);
            }
            other if other.starts_with('-') => fail(&format!("unknown flag `{other}`")),
            other => {
                if dir.is_some() {
                    fail("more than one database directory given");
                }
                dir = Some(other.to_string());
            }
        }
    }

    let db = match (&dir, memory) {
        (Some(_), true) => fail("--memory conflicts with a database directory"),
        (Some(d), false) => match Database::open(Path::new(d)) {
            Ok(db) => {
                logging::info("ode-server", &format!("database at {d}"), &[("dir", d)]);
                db
            }
            Err(e) => {
                logging::error(
                    "ode-server",
                    &format!("cannot open {d}: {e}"),
                    &[("dir", d)],
                );
                std::process::exit(1);
            }
        },
        (None, _) => {
            logging::info(
                "ode-server",
                "in-memory database (pass a directory to persist)",
                &[],
            );
            Database::in_memory()
        }
    };

    // Dump the flight recorder's recent spans to stderr if the server
    // ever panics: the crash report carries its own black box.
    FlightRecorder::install_panic_dump(db.flight());

    install_signal_handlers();
    let handle = match Server::bind(Arc::new(db), cfg.clone(), listen.as_str()) {
        Ok(h) => h,
        Err(e) => {
            logging::error(
                "ode-server",
                &format!("cannot bind {listen}: {e}"),
                &[("listen", &listen)],
            );
            std::process::exit(1);
        }
    };
    // Readiness line on stdout so scripts can wait for it.
    println!(
        "listening on {} (max {} connections)",
        handle.addr(),
        cfg.max_connections
    );
    let _ = std::io::stdout().flush();
    let addr = handle.addr().to_string();
    logging::info(
        "ode-server",
        &format!("listening on {addr}"),
        &[("addr", &addr)],
    );
    if let Some(maddr) = handle.metrics_addr() {
        let maddr = maddr.to_string();
        logging::info(
            "ode-server",
            &format!("metrics on http://{maddr}/metrics"),
            &[("metrics_addr", &maddr)],
        );
    }

    while !TERMINATE.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }

    logging::info("ode-server", "draining…", &[]);
    let report = handle.shutdown();
    if report.drained {
        logging::info("ode-server", "drained cleanly", &[]);
        std::process::exit(0);
    }
    logging::warn(
        "ode-server",
        &format!(
            "drain budget expired with {} connection(s) open",
            report.connections_remaining
        ),
        &[],
    );
    std::process::exit(1);
}
