//! Per-connection session loop: handshake, request dispatch, drain.
//!
//! Each connection runs an [`ode_shell::Session`] over the shared
//! database, so every statement and meta-command of the local shell works
//! over the wire unchanged. Sockets are read with a short timeout so the
//! loop can poll the server's shutdown flag: on drain, a connection
//! finishes the request it is executing (and flushes the response), then
//! sends `Goodbye` and closes — no in-flight request is ever dropped.
//!
//! Subscriptions ride the same loop: a v3 client's `Subscribe` control
//! op registers a predicate with the server's scheduler, whose sink
//! encodes `Push` frames into this connection's bounded outbox. The
//! outbox is flushed inside the poll loop *between* requests, so an
//! unsolicited push can never split a request's response frame. A full
//! outbox drops the oldest-pending push for that tick (slow consumer);
//! drops are counted, framing is never at risk.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Read;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ode_core::obs::flight::set_trace;
use ode_core::obs::{render_spans, TraceId};
use ode_core::prelude::Oid;
use ode_core::Database;
use ode_sched::PushSink;
use ode_shell::{EvalResult, Session};
use ode_wire::protocol::{
    negotiate, write_frame, ControlOp, ErrorKind, FrameReader, Request, Response,
    MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};

use crate::ServerState;

/// Most push frames buffered per connection before a slow consumer
/// starts losing them (each loss increments `push_dropped`).
const PUSH_OUTBOX_CAP: usize = 256;

/// Why the request-wait loop stopped.
enum Wait {
    /// A complete request frame arrived.
    Frame(Vec<u8>),
    /// The peer closed (EOF) or the socket failed.
    Closed,
    /// The server is draining and no complete request is pending.
    Draining,
    /// No complete request arrived within the idle budget.
    Idle,
    /// The pending frame exceeds the request-size limit.
    TooLarge,
}

pub(crate) fn serve(stream: TcpStream, state: &Arc<ServerState>) {
    let mut conn = Conn {
        stream,
        reader: FrameReader::new(),
        state: Arc::clone(state),
        version: 0,
        outbox: Arc::new(Mutex::new(VecDeque::new())),
        subs: Vec::new(),
    };
    // Socket tuning failures are survivable (the connection still works,
    // just slower or without a write bound) but must not be silent.
    if conn.stream.set_nodelay(true).is_err() {
        state.tel.socket_errors.inc();
    }
    if conn
        .stream
        .set_read_timeout(Some(state.cfg.poll_interval))
        .is_err()
    {
        // Without a read timeout the poll loop would block forever and
        // never observe drain; refuse the connection instead.
        state.tel.socket_errors.inc();
        return;
    }
    if conn
        .stream
        .set_write_timeout(Some(Duration::from_secs(30)))
        .is_err()
    {
        state.tel.socket_errors.inc();
    }
    conn.run();
    conn.teardown();
}

struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    state: Arc<ServerState>,
    /// Negotiated protocol version (0 until the handshake completes).
    version: u16,
    /// Encoded `Push` frames awaiting a flush slot between requests.
    /// Shared with the scheduler sinks of this connection's
    /// subscriptions, which run on scheduler worker threads.
    outbox: Arc<Mutex<VecDeque<Vec<u8>>>>,
    /// Subscription ids registered by this connection, retracted on
    /// teardown so a closed socket stops costing sub-check work.
    subs: Vec<u64>,
}

impl Conn {
    fn run(&mut self) {
        let state = Arc::clone(&self.state);
        let tel = &state.tel;

        // ------------------------------------------------- handshake
        let first = match self.wait_for_frame() {
            Wait::Frame(f) => f,
            Wait::TooLarge => {
                tel.handshake_failures.inc();
                self.send_best_effort(&Response::Error {
                    kind: ErrorKind::TooLarge,
                    message: "handshake frame exceeds request-size limit".into(),
                });
                return;
            }
            _ => {
                tel.handshake_failures.inc();
                return;
            }
        };
        let negotiated = match Request::decode(&first) {
            Ok(Request::Hello { version }) => match negotiate(version) {
                Some(v) => v,
                None => {
                    tel.handshake_failures.inc();
                    self.send_best_effort(&Response::Error {
                        kind: ErrorKind::Protocol,
                        message: format!(
                            "server speaks protocol \
                             v{MIN_PROTOCOL_VERSION}..=v{PROTOCOL_VERSION}, \
                             client sent v{version}"
                        ),
                    });
                    return;
                }
            },
            _ => {
                tel.handshake_failures.inc();
                self.send_best_effort(&Response::Error {
                    kind: ErrorKind::Protocol,
                    message: "first frame must be Hello".into(),
                });
                return;
            }
        };
        self.version = negotiated;
        if self
            .send(&Response::Welcome {
                version: negotiated,
            })
            .is_err()
        {
            return;
        }

        // ---------------------------------------------- request loop
        let mut session = Session::with_shared(Arc::clone(&self.state.db));
        loop {
            let frame = match self.wait_for_frame() {
                Wait::Frame(f) => f,
                Wait::Closed => return,
                Wait::Draining | Wait::Idle => {
                    self.send_best_effort(&Response::Goodbye);
                    return;
                }
                Wait::TooLarge => {
                    // Framing is lost past an oversized header; refuse and
                    // close rather than desynchronize.
                    self.send_best_effort(&Response::Error {
                        kind: ErrorKind::TooLarge,
                        message: format!(
                            "request exceeds the {}-byte limit",
                            self.state.cfg.max_request_bytes
                        ),
                    });
                    return;
                }
            };
            let req = match Request::decode(&frame) {
                Ok(r) => r,
                Err(e) => {
                    self.send_best_effort(&Response::Error {
                        kind: ErrorKind::Protocol,
                        message: e.to_string(),
                    });
                    return;
                }
            };
            tel.requests.inc();
            let resp = match req {
                Request::Hello { .. } => {
                    self.send_best_effort(&Response::Error {
                        kind: ErrorKind::Protocol,
                        message: "session already handshaken".into(),
                    });
                    return;
                }
                Request::Bye => {
                    self.send_best_effort(&Response::Goodbye);
                    return;
                }
                Request::Control(op) => self.control(op),
                Request::Line(text) => match self.eval_line(&mut session, TraceId::NONE, &text) {
                    Some(resp) => resp,
                    None => {
                        self.send_best_effort(&Response::Goodbye);
                        return;
                    }
                },
                Request::TracedLine { trace, text } => {
                    match self.eval_line(&mut session, TraceId(trace), &text) {
                        Some(resp) => resp,
                        None => {
                            self.send_best_effort(&Response::Goodbye);
                            return;
                        }
                    }
                }
            };
            if self.send(&resp).is_err() {
                return;
            }
        }
    }

    /// Evaluate one statement line under the given trace context (NONE
    /// for a v1 `Line`). `None` means the session asked to exit.
    fn eval_line(&mut self, session: &mut Session, trace: TraceId, text: &str) -> Option<Response> {
        let tel = &self.state.tel;
        // Install the client-minted trace id for this thread so every
        // span the engine records below lands in the client's trace; the
        // guard restores the previous (untraced) context on return.
        let _ctx = trace.is_traced().then(|| set_trace(trace));
        let started = Instant::now();
        let outcome = session.eval_line(text);
        let elapsed = started.elapsed();
        tel.request_latency.record_ns(elapsed.as_nanos() as u64);
        if elapsed > self.state.cfg.request_timeout {
            tel.timed_out.inc();
            return Some(Response::Error {
                kind: ErrorKind::Timeout,
                message: format!(
                    "request took {elapsed:.1?}, budget is {:.1?}",
                    self.state.cfg.request_timeout
                ),
            });
        }
        match outcome {
            EvalResult::Output(out) => Some(Response::Output(out)),
            EvalResult::Continue => Some(Response::Continue),
            EvalResult::Error(e) => {
                tel.engine_errors.inc();
                Some(Response::Error {
                    kind: error_kind(&e),
                    message: e.to_string(),
                })
            }
            EvalResult::Exit => None,
        }
    }

    fn control(&mut self, op: ControlOp) -> Response {
        let out = match op {
            ControlOp::Ping => "pong".to_string(),
            ControlOp::ServerStats => {
                let mut out = String::new();
                for (k, v) in self.state.tel.snapshot().rows() {
                    let _ = writeln!(out, "{k:<32} {v}");
                }
                out.trim_end().to_string()
            }
            ControlOp::TelemetryJson => self.state.db.telemetry().to_json(),
            ControlOp::Metrics => {
                let db = &self.state.db;
                ode_core::obs::prom::render(
                    &db.telemetry(),
                    Some(&self.state.tel.snapshot()),
                    &db.workload_stats(),
                    db.flight().recorded(),
                )
            }
            ControlOp::Trace(id) => {
                let trace = TraceId(id);
                let spans = self.state.db.flight().for_trace(trace);
                if spans.is_empty() {
                    let flight = self.state.db.flight();
                    format!(
                        "no spans for trace {trace} (ring holds {} of {} recorded)",
                        flight.capacity(),
                        flight.recorded()
                    )
                } else {
                    render_spans(&spans)
                }
            }
            ControlOp::SlowLog => self.state.db.slow_log().render(),
            ControlOp::Subscribe { cluster, predicate } => {
                return self.subscribe(&cluster, &predicate)
            }
            ControlOp::Unsubscribe(id) => return self.unsubscribe(id),
        };
        Response::Output(out)
    }

    /// Register a live subscription: matching commits will arrive as
    /// unsolicited `Push` frames. The sink runs on scheduler worker
    /// threads and only encodes + enqueues — socket writes stay on this
    /// connection's own thread.
    fn subscribe(&mut self, cluster: &str, predicate: &str) -> Response {
        if self.version < 3 {
            return Response::Error {
                kind: ErrorKind::Protocol,
                message: format!(
                    "subscriptions require protocol v3 (session negotiated v{})",
                    self.version
                ),
            };
        }
        let state = Arc::clone(&self.state);
        let outbox = Arc::clone(&self.outbox);
        let sink: PushSink = Arc::new(move |m| {
            let object = render_object(&state.db, m.oid);
            let payload = Response::Push {
                sub_id: m.sub_id,
                epoch: m.epoch,
                object,
            }
            .encode();
            let mut q = outbox.lock().unwrap_or_else(|e| e.into_inner());
            if q.len() >= PUSH_OUTBOX_CAP {
                state.tel.push_dropped.inc();
            } else {
                q.push_back(payload);
                state.tel.push_outbox_depth.inc();
            }
        });
        match self.state.sched.subscribe(cluster, predicate, sink) {
            Ok(id) => {
                self.subs.push(id);
                self.state.tel.subscriptions.inc();
                Response::Output(id.to_string())
            }
            Err(e) => Response::Error {
                kind: error_kind(&e),
                message: e.to_string(),
            },
        }
    }

    /// Retract a subscription. Only ids this connection registered are
    /// honored — one client cannot silence another's stream.
    fn unsubscribe(&mut self, id: u64) -> Response {
        match self.subs.iter().position(|&s| s == id) {
            Some(i) if self.state.sched.unsubscribe(id) => {
                self.subs.remove(i);
                self.state.tel.subscriptions.dec();
                Response::Output(format!("unsubscribed {id}"))
            }
            _ => Response::Error {
                kind: ErrorKind::Engine,
                message: format!("no subscription {id} on this connection"),
            },
        }
    }

    /// Connection teardown: retract this connection's subscriptions so a
    /// closed socket stops costing sub-check work, and account pushes
    /// still buffered (they will never be written) as dropped.
    fn teardown(&mut self) {
        let tel = &self.state.tel;
        for id in self.subs.drain(..) {
            if self.state.sched.unsubscribe(id) {
                tel.subscriptions.dec();
            }
        }
        let mut q = self.outbox.lock().unwrap_or_else(|e| e.into_inner());
        while q.pop_front().is_some() {
            tel.push_outbox_depth.dec();
            tel.push_dropped.inc();
        }
    }

    /// Write buffered push frames to the peer. Called only from the
    /// request-wait loop, between requests, so a push can never
    /// interleave with a response frame.
    fn flush_pushes(&mut self) -> std::io::Result<()> {
        loop {
            let payload = {
                let mut q = self.outbox.lock().unwrap_or_else(|e| e.into_inner());
                match q.pop_front() {
                    Some(p) => {
                        self.state.tel.push_outbox_depth.dec();
                        p
                    }
                    None => return Ok(()),
                }
            };
            self.state.tel.bytes_out.add(payload.len() as u64 + 4);
            write_frame(&mut self.stream, &payload)?;
            self.state.tel.pushes_sent.inc();
        }
    }

    /// Block (in poll-interval ticks) until a complete request frame is
    /// available, the peer hangs up, the idle budget expires, or the
    /// server starts draining.
    fn wait_for_frame(&mut self) -> Wait {
        let deadline = Instant::now() + self.state.cfg.idle_timeout;
        let mut chunk = [0u8; 4096];
        loop {
            match self.reader.next_frame(self.state.cfg.max_request_bytes) {
                Ok(Some(frame)) => return Wait::Frame(frame),
                Ok(None) => {}
                Err(_) => return Wait::TooLarge,
            }
            // Between requests is the safe window for unsolicited
            // frames; a failed push write means the peer is gone.
            if self.flush_pushes().is_err() {
                return Wait::Closed;
            }
            if self.state.draining() {
                return Wait::Draining;
            }
            if Instant::now() > deadline {
                return Wait::Idle;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Wait::Closed,
                Ok(n) => {
                    self.state.tel.bytes_in.add(n as u64);
                    self.reader.push(&chunk[..n]);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut
                        || e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Wait::Closed,
            }
        }
    }

    fn send(&mut self, resp: &Response) -> std::io::Result<()> {
        let payload = resp.encode();
        self.state.tel.bytes_out.add(payload.len() as u64 + 4);
        write_frame(&mut self.stream, &payload)
    }

    fn send_best_effort(&mut self, resp: &Response) {
        let _ = self.send(resp);
    }
}

/// Map an engine error to its wire kind. `Cascade` tells the client the
/// triggering commit itself succeeded (weak coupling) — only the
/// decoupled action chain was cut off — so retrying the statement won't
/// help and would double-apply it.
fn error_kind(e: &ode_core::OdeError) -> ErrorKind {
    match e {
        ode_core::OdeError::Analysis(_) => ErrorKind::Analysis,
        ode_core::OdeError::TriggerCascade { .. } => ErrorKind::Cascade,
        e if e.is_unavailable() => ErrorKind::Unavailable,
        _ => ErrorKind::Engine,
    }
}

/// Render a pushed object the way the shell prints one, so a remote
/// subscriber sees the familiar `oid (Class) { field: value, … }`
/// surface. Falls back to the bare oid when the object vanished between
/// the match and this snapshot read.
fn render_object(db: &Database, oid: Oid) -> String {
    let rendered = db.read(|rtx| {
        let state = rtx.read(oid)?;
        rtx.database().with_schema(|schema| {
            let def = schema.class(state.class)?;
            let mut s = format!("{oid} ({})", def.name);
            s.push_str(" { ");
            for (i, f) in def.layout.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{}: {}", f.name, state.fields[i]);
            }
            s.push_str(" }");
            Ok(s)
        })
    });
    rendered.unwrap_or_else(|_| oid.to_string())
}
