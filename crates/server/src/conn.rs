//! Per-connection session loop: handshake, request dispatch, drain.
//!
//! Each connection runs an [`ode_shell::Session`] over the shared
//! database, so every statement and meta-command of the local shell works
//! over the wire unchanged. Sockets are read with a short timeout so the
//! loop can poll the server's shutdown flag: on drain, a connection
//! finishes the request it is executing (and flushes the response), then
//! sends `Goodbye` and closes — no in-flight request is ever dropped.

use std::fmt::Write as _;
use std::io::Read;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ode_shell::{EvalResult, Session};
use ode_wire::protocol::{
    write_frame, ControlOp, ErrorKind, FrameReader, Request, Response, PROTOCOL_VERSION,
};

use crate::ServerState;

/// Why the request-wait loop stopped.
enum Wait {
    /// A complete request frame arrived.
    Frame(Vec<u8>),
    /// The peer closed (EOF) or the socket failed.
    Closed,
    /// The server is draining and no complete request is pending.
    Draining,
    /// No complete request arrived within the idle budget.
    Idle,
    /// The pending frame exceeds the request-size limit.
    TooLarge,
}

pub(crate) fn serve(stream: TcpStream, state: &Arc<ServerState>) {
    let mut conn = Conn {
        stream,
        reader: FrameReader::new(),
        state: Arc::clone(state),
    };
    // Socket tuning failures are survivable (the connection still works,
    // just slower or without a write bound) but must not be silent.
    if conn.stream.set_nodelay(true).is_err() {
        state.tel.socket_errors.inc();
    }
    if conn
        .stream
        .set_read_timeout(Some(state.cfg.poll_interval))
        .is_err()
    {
        // Without a read timeout the poll loop would block forever and
        // never observe drain; refuse the connection instead.
        state.tel.socket_errors.inc();
        return;
    }
    if conn
        .stream
        .set_write_timeout(Some(Duration::from_secs(30)))
        .is_err()
    {
        state.tel.socket_errors.inc();
    }
    conn.run();
}

struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    state: Arc<ServerState>,
}

impl Conn {
    fn run(&mut self) {
        let state = Arc::clone(&self.state);
        let tel = &state.tel;

        // ------------------------------------------------- handshake
        let first = match self.wait_for_frame() {
            Wait::Frame(f) => f,
            Wait::TooLarge => {
                tel.handshake_failures.inc();
                self.send_best_effort(&Response::Error {
                    kind: ErrorKind::TooLarge,
                    message: "handshake frame exceeds request-size limit".into(),
                });
                return;
            }
            _ => {
                tel.handshake_failures.inc();
                return;
            }
        };
        match Request::decode(&first) {
            Ok(Request::Hello { version }) if version == PROTOCOL_VERSION => {}
            Ok(Request::Hello { version }) => {
                tel.handshake_failures.inc();
                self.send_best_effort(&Response::Error {
                    kind: ErrorKind::Protocol,
                    message: format!(
                        "server speaks protocol v{PROTOCOL_VERSION}, client sent v{version}"
                    ),
                });
                return;
            }
            _ => {
                tel.handshake_failures.inc();
                self.send_best_effort(&Response::Error {
                    kind: ErrorKind::Protocol,
                    message: "first frame must be Hello".into(),
                });
                return;
            }
        }
        if self
            .send(&Response::Welcome {
                version: PROTOCOL_VERSION,
            })
            .is_err()
        {
            return;
        }

        // ---------------------------------------------- request loop
        let mut session = Session::with_shared(Arc::clone(&self.state.db));
        loop {
            let frame = match self.wait_for_frame() {
                Wait::Frame(f) => f,
                Wait::Closed => return,
                Wait::Draining | Wait::Idle => {
                    self.send_best_effort(&Response::Goodbye);
                    return;
                }
                Wait::TooLarge => {
                    // Framing is lost past an oversized header; refuse and
                    // close rather than desynchronize.
                    self.send_best_effort(&Response::Error {
                        kind: ErrorKind::TooLarge,
                        message: format!(
                            "request exceeds the {}-byte limit",
                            self.state.cfg.max_request_bytes
                        ),
                    });
                    return;
                }
            };
            let req = match Request::decode(&frame) {
                Ok(r) => r,
                Err(e) => {
                    self.send_best_effort(&Response::Error {
                        kind: ErrorKind::Protocol,
                        message: e.to_string(),
                    });
                    return;
                }
            };
            tel.requests.inc();
            let resp = match req {
                Request::Hello { .. } => {
                    self.send_best_effort(&Response::Error {
                        kind: ErrorKind::Protocol,
                        message: "session already handshaken".into(),
                    });
                    return;
                }
                Request::Bye => {
                    self.send_best_effort(&Response::Goodbye);
                    return;
                }
                Request::Control(op) => Response::Output(self.control(op)),
                Request::Line(text) => {
                    let started = Instant::now();
                    let outcome = session.eval_line(&text);
                    let elapsed = started.elapsed();
                    tel.request_latency.record_ns(elapsed.as_nanos() as u64);
                    if elapsed > self.state.cfg.request_timeout {
                        tel.timed_out.inc();
                        Response::Error {
                            kind: ErrorKind::Timeout,
                            message: format!(
                                "request took {elapsed:.1?}, budget is {:.1?}",
                                self.state.cfg.request_timeout
                            ),
                        }
                    } else {
                        match outcome {
                            EvalResult::Output(out) => Response::Output(out),
                            EvalResult::Continue => Response::Continue,
                            EvalResult::Error(e) => {
                                tel.engine_errors.inc();
                                let kind = match &e {
                                    ode_core::OdeError::Analysis(_) => ErrorKind::Analysis,
                                    e if e.is_unavailable() => ErrorKind::Unavailable,
                                    _ => ErrorKind::Engine,
                                };
                                Response::Error {
                                    kind,
                                    message: e.to_string(),
                                }
                            }
                            EvalResult::Exit => {
                                self.send_best_effort(&Response::Goodbye);
                                return;
                            }
                        }
                    }
                }
            };
            if self.send(&resp).is_err() {
                return;
            }
        }
    }

    fn control(&self, op: ControlOp) -> String {
        match op {
            ControlOp::Ping => "pong".to_string(),
            ControlOp::ServerStats => {
                let mut out = String::new();
                for (k, v) in self.state.tel.snapshot().rows() {
                    let _ = writeln!(out, "{k:<32} {v}");
                }
                out.trim_end().to_string()
            }
            ControlOp::TelemetryJson => self.state.db.telemetry().to_json(),
        }
    }

    /// Block (in poll-interval ticks) until a complete request frame is
    /// available, the peer hangs up, the idle budget expires, or the
    /// server starts draining.
    fn wait_for_frame(&mut self) -> Wait {
        let deadline = Instant::now() + self.state.cfg.idle_timeout;
        let mut chunk = [0u8; 4096];
        loop {
            match self.reader.next_frame(self.state.cfg.max_request_bytes) {
                Ok(Some(frame)) => return Wait::Frame(frame),
                Ok(None) => {}
                Err(_) => return Wait::TooLarge,
            }
            if self.state.draining() {
                return Wait::Draining;
            }
            if Instant::now() > deadline {
                return Wait::Idle;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Wait::Closed,
                Ok(n) => {
                    self.state.tel.bytes_in.add(n as u64);
                    self.reader.push(&chunk[..n]);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut
                        || e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Wait::Closed,
            }
        }
    }

    fn send(&mut self, resp: &Response) -> std::io::Result<()> {
        let payload = resp.encode();
        self.state.tel.bytes_out.add(payload.len() as u64 + 4);
        write_frame(&mut self.stream, &payload)
    }

    fn send_best_effort(&mut self, resp: &Response) {
        let _ = self.send(resp);
    }
}
