//! Per-connection session loop: handshake, request dispatch, drain.
//!
//! Each connection runs an [`ode_shell::Session`] over the shared
//! database, so every statement and meta-command of the local shell works
//! over the wire unchanged. Sockets are read with a short timeout so the
//! loop can poll the server's shutdown flag: on drain, a connection
//! finishes the request it is executing (and flushes the response), then
//! sends `Goodbye` and closes — no in-flight request is ever dropped.

use std::fmt::Write as _;
use std::io::Read;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ode_core::obs::flight::set_trace;
use ode_core::obs::{render_spans, TraceId};
use ode_shell::{EvalResult, Session};
use ode_wire::protocol::{
    negotiate, write_frame, ControlOp, ErrorKind, FrameReader, Request, Response,
    MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};

use crate::ServerState;

/// Why the request-wait loop stopped.
enum Wait {
    /// A complete request frame arrived.
    Frame(Vec<u8>),
    /// The peer closed (EOF) or the socket failed.
    Closed,
    /// The server is draining and no complete request is pending.
    Draining,
    /// No complete request arrived within the idle budget.
    Idle,
    /// The pending frame exceeds the request-size limit.
    TooLarge,
}

pub(crate) fn serve(stream: TcpStream, state: &Arc<ServerState>) {
    let mut conn = Conn {
        stream,
        reader: FrameReader::new(),
        state: Arc::clone(state),
    };
    // Socket tuning failures are survivable (the connection still works,
    // just slower or without a write bound) but must not be silent.
    if conn.stream.set_nodelay(true).is_err() {
        state.tel.socket_errors.inc();
    }
    if conn
        .stream
        .set_read_timeout(Some(state.cfg.poll_interval))
        .is_err()
    {
        // Without a read timeout the poll loop would block forever and
        // never observe drain; refuse the connection instead.
        state.tel.socket_errors.inc();
        return;
    }
    if conn
        .stream
        .set_write_timeout(Some(Duration::from_secs(30)))
        .is_err()
    {
        state.tel.socket_errors.inc();
    }
    conn.run();
}

struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    state: Arc<ServerState>,
}

impl Conn {
    fn run(&mut self) {
        let state = Arc::clone(&self.state);
        let tel = &state.tel;

        // ------------------------------------------------- handshake
        let first = match self.wait_for_frame() {
            Wait::Frame(f) => f,
            Wait::TooLarge => {
                tel.handshake_failures.inc();
                self.send_best_effort(&Response::Error {
                    kind: ErrorKind::TooLarge,
                    message: "handshake frame exceeds request-size limit".into(),
                });
                return;
            }
            _ => {
                tel.handshake_failures.inc();
                return;
            }
        };
        let negotiated = match Request::decode(&first) {
            Ok(Request::Hello { version }) => match negotiate(version) {
                Some(v) => v,
                None => {
                    tel.handshake_failures.inc();
                    self.send_best_effort(&Response::Error {
                        kind: ErrorKind::Protocol,
                        message: format!(
                            "server speaks protocol \
                             v{MIN_PROTOCOL_VERSION}..=v{PROTOCOL_VERSION}, \
                             client sent v{version}"
                        ),
                    });
                    return;
                }
            },
            _ => {
                tel.handshake_failures.inc();
                self.send_best_effort(&Response::Error {
                    kind: ErrorKind::Protocol,
                    message: "first frame must be Hello".into(),
                });
                return;
            }
        };
        if self
            .send(&Response::Welcome {
                version: negotiated,
            })
            .is_err()
        {
            return;
        }

        // ---------------------------------------------- request loop
        let mut session = Session::with_shared(Arc::clone(&self.state.db));
        loop {
            let frame = match self.wait_for_frame() {
                Wait::Frame(f) => f,
                Wait::Closed => return,
                Wait::Draining | Wait::Idle => {
                    self.send_best_effort(&Response::Goodbye);
                    return;
                }
                Wait::TooLarge => {
                    // Framing is lost past an oversized header; refuse and
                    // close rather than desynchronize.
                    self.send_best_effort(&Response::Error {
                        kind: ErrorKind::TooLarge,
                        message: format!(
                            "request exceeds the {}-byte limit",
                            self.state.cfg.max_request_bytes
                        ),
                    });
                    return;
                }
            };
            let req = match Request::decode(&frame) {
                Ok(r) => r,
                Err(e) => {
                    self.send_best_effort(&Response::Error {
                        kind: ErrorKind::Protocol,
                        message: e.to_string(),
                    });
                    return;
                }
            };
            tel.requests.inc();
            let resp = match req {
                Request::Hello { .. } => {
                    self.send_best_effort(&Response::Error {
                        kind: ErrorKind::Protocol,
                        message: "session already handshaken".into(),
                    });
                    return;
                }
                Request::Bye => {
                    self.send_best_effort(&Response::Goodbye);
                    return;
                }
                Request::Control(op) => Response::Output(self.control(op)),
                Request::Line(text) => match self.eval_line(&mut session, TraceId::NONE, &text) {
                    Some(resp) => resp,
                    None => {
                        self.send_best_effort(&Response::Goodbye);
                        return;
                    }
                },
                Request::TracedLine { trace, text } => {
                    match self.eval_line(&mut session, TraceId(trace), &text) {
                        Some(resp) => resp,
                        None => {
                            self.send_best_effort(&Response::Goodbye);
                            return;
                        }
                    }
                }
            };
            if self.send(&resp).is_err() {
                return;
            }
        }
    }

    /// Evaluate one statement line under the given trace context (NONE
    /// for a v1 `Line`). `None` means the session asked to exit.
    fn eval_line(&mut self, session: &mut Session, trace: TraceId, text: &str) -> Option<Response> {
        let tel = &self.state.tel;
        // Install the client-minted trace id for this thread so every
        // span the engine records below lands in the client's trace; the
        // guard restores the previous (untraced) context on return.
        let _ctx = trace.is_traced().then(|| set_trace(trace));
        let started = Instant::now();
        let outcome = session.eval_line(text);
        let elapsed = started.elapsed();
        tel.request_latency.record_ns(elapsed.as_nanos() as u64);
        if elapsed > self.state.cfg.request_timeout {
            tel.timed_out.inc();
            return Some(Response::Error {
                kind: ErrorKind::Timeout,
                message: format!(
                    "request took {elapsed:.1?}, budget is {:.1?}",
                    self.state.cfg.request_timeout
                ),
            });
        }
        match outcome {
            EvalResult::Output(out) => Some(Response::Output(out)),
            EvalResult::Continue => Some(Response::Continue),
            EvalResult::Error(e) => {
                tel.engine_errors.inc();
                let kind = match &e {
                    ode_core::OdeError::Analysis(_) => ErrorKind::Analysis,
                    e if e.is_unavailable() => ErrorKind::Unavailable,
                    _ => ErrorKind::Engine,
                };
                Some(Response::Error {
                    kind,
                    message: e.to_string(),
                })
            }
            EvalResult::Exit => None,
        }
    }

    fn control(&self, op: ControlOp) -> String {
        match op {
            ControlOp::Ping => "pong".to_string(),
            ControlOp::ServerStats => {
                let mut out = String::new();
                for (k, v) in self.state.tel.snapshot().rows() {
                    let _ = writeln!(out, "{k:<32} {v}");
                }
                out.trim_end().to_string()
            }
            ControlOp::TelemetryJson => self.state.db.telemetry().to_json(),
            ControlOp::Metrics => {
                let db = &self.state.db;
                ode_core::obs::prom::render(
                    &db.telemetry(),
                    Some(&self.state.tel.snapshot()),
                    &db.workload_stats(),
                    db.flight().recorded(),
                )
            }
            ControlOp::Trace(id) => {
                let trace = TraceId(id);
                let spans = self.state.db.flight().for_trace(trace);
                if spans.is_empty() {
                    let flight = self.state.db.flight();
                    format!(
                        "no spans for trace {trace} (ring holds {} of {} recorded)",
                        flight.capacity(),
                        flight.recorded()
                    )
                } else {
                    render_spans(&spans)
                }
            }
            ControlOp::SlowLog => self.state.db.slow_log().render(),
        }
    }

    /// Block (in poll-interval ticks) until a complete request frame is
    /// available, the peer hangs up, the idle budget expires, or the
    /// server starts draining.
    fn wait_for_frame(&mut self) -> Wait {
        let deadline = Instant::now() + self.state.cfg.idle_timeout;
        let mut chunk = [0u8; 4096];
        loop {
            match self.reader.next_frame(self.state.cfg.max_request_bytes) {
                Ok(Some(frame)) => return Wait::Frame(frame),
                Ok(None) => {}
                Err(_) => return Wait::TooLarge,
            }
            if self.state.draining() {
                return Wait::Draining;
            }
            if Instant::now() > deadline {
                return Wait::Idle;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Wait::Closed,
                Ok(n) => {
                    self.state.tel.bytes_in.add(n as u64);
                    self.reader.push(&chunk[..n]);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut
                        || e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Wait::Closed,
            }
        }
    }

    fn send(&mut self, resp: &Response) -> std::io::Result<()> {
        let payload = resp.encode();
        self.state.tel.bytes_out.add(payload.len() as u64 + 4);
        write_frame(&mut self.stream, &payload)
    }

    fn send_best_effort(&mut self, resp: &Response) {
        let _ = self.send(resp);
    }
}
