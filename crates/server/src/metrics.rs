//! Optional plain-HTTP `/metrics` listener (Prometheus exposition,
//! text format 0.0.4).
//!
//! Scrapers speak HTTP, not the ode wire protocol, so when
//! [`crate::ServerConfig::metrics_addr`] is set the server binds a
//! second listener that answers `GET /metrics` with the same exposition
//! the wire `Metrics` control op returns. The implementation is a
//! deliberately tiny HTTP/1.0-style responder — one request per
//! connection, no keep-alive, no TLS — because a scrape endpoint needs
//! nothing more and every dependency it doesn't have is attack surface
//! it doesn't carry.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::ServerState;

/// Accept loop for the metrics listener; exits when the server drains.
pub(crate) fn metrics_loop(listener: TcpListener, state: Arc<ServerState>) {
    loop {
        if state.draining() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => serve_scrape(stream, &state),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(state.cfg.poll_interval);
            }
            Err(_) => std::thread::sleep(state.cfg.poll_interval),
        }
    }
}

/// Answer one scrape. Reads until the request head is complete (blank
/// line) or a short budget expires, then writes the full response and
/// closes.
fn serve_scrape(mut stream: TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));

    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    let deadline = Instant::now() + Duration::from_secs(2);
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if Instant::now() > deadline || head.len() > 8192 {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }

    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(&[]);
    let request_line = String::from_utf8_lossy(request_line);
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".to_string(),
        )
    } else if path == "/metrics" || path.starts_with("/metrics?") {
        let db = &state.db;
        let body = ode_core::obs::prom::render(
            &db.telemetry(),
            Some(&state.tel.snapshot()),
            &db.workload_stats(),
            db.flight().recorded(),
        );
        ("200 OK", "text/plain; version=0.0.4; charset=utf-8", body)
    } else {
        (
            "404 Not Found",
            "text/plain",
            "only /metrics is served here\n".to_string(),
        )
    };

    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}
