//! End-to-end observability over the wire: client-minted trace ids
//! landing in the server's flight recorder, metrics exposition and
//! slow-query retrieval via control ops, the HTTP `/metrics` listener,
//! and version negotiation between v1-era and current endpoints.

use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use ode_core::obs::{prom, SpanStage, TraceId};
use ode_core::Database;
use ode_server::client::{Client, ClientError, RemoteLine};
use ode_server::{Server, ServerConfig};
use ode_wire::protocol::{read_frame, write_frame, Request, Response, PROTOCOL_VERSION};

fn quick_cfg() -> ServerConfig {
    ServerConfig {
        poll_interval: Duration::from_millis(5),
        ..ServerConfig::default()
    }
}

fn seeded_db() -> Arc<Database> {
    let db = Database::in_memory();
    db.define_from_source("class stockitem { string name; int quantity = 0; }")
        .unwrap();
    db.create_cluster("stockitem").unwrap();
    Arc::new(db)
}

fn output(line: RemoteLine) -> String {
    match line {
        RemoteLine::Output(s) => s,
        other => panic!("expected output, got {other:?}"),
    }
}

/// The acceptance scenario: a connected client issues a statement, and
/// the trace id it minted retrieves the full span tree — analyze,
/// plan/execute, and commit stages with monotonic timestamps — from the
/// server's flight recorder.
#[test]
fn traced_request_spans_reach_the_server_flight_recorder() {
    let db = seeded_db();
    let handle = Server::bind(Arc::clone(&db), quick_cfg(), "127.0.0.1:0").unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    assert_eq!(
        c.version(),
        PROTOCOL_VERSION,
        "fresh client+server should speak the current protocol"
    );

    output(
        c.line(r#"pnew stockitem (name = "gear", quantity = 1)"#)
            .unwrap(),
    );
    // An update runs the whole pipeline in one request: analysis, a
    // query pass to find candidates, and a commit.
    let out = output(
        c.line("update s in stockitem suchthat (quantity == 1) set quantity = 2")
            .unwrap(),
    );
    assert!(out.contains("updated 1"), "{out}");

    let trace = TraceId(c.last_trace());
    assert!(trace.is_traced(), "v2 client sent an untraced line");
    let spans = db.flight().for_trace(trace);
    assert!(!spans.is_empty(), "no spans for the client's trace");

    let stages: Vec<SpanStage> = spans.iter().map(|s| s.stage).collect();
    for want in [
        SpanStage::Request,
        SpanStage::Analyze,
        SpanStage::Execute,
        SpanStage::Txn,
        SpanStage::Commit,
    ] {
        assert!(stages.contains(&want), "missing {want:?} in {stages:?}");
    }
    // Every span carries the client's trace id and monotonic timestamps.
    for s in &spans {
        assert_eq!(s.trace, trace);
        assert!(s.end_ns >= s.start_ns, "{s:?}");
    }
    // The request span is the root; the commit nests under the txn.
    let request = spans
        .iter()
        .find(|s| s.stage == SpanStage::Request)
        .unwrap();
    assert_eq!(request.parent, 0, "request span must be the root");
    let txn = spans.iter().find(|s| s.stage == SpanStage::Txn).unwrap();
    let commit = spans.iter().find(|s| s.stage == SpanStage::Commit).unwrap();
    assert_eq!(commit.parent, txn.span_id);
    assert!(txn.start_ns >= request.start_ns);

    // The same tree is retrievable over the wire by trace id…
    let rendered = c.trace(trace.0).unwrap();
    assert!(rendered.contains(&format!("trace {trace}")), "{rendered}");
    assert!(rendered.contains("commit"), "{rendered}");
    // …and an unknown trace id answers with a bounded "not found", not
    // an error or a desync.
    let missing = c.trace(0xdead_beef_0000_0001).unwrap();
    assert!(missing.contains("no spans"), "{missing}");

    c.bye().unwrap();
    handle.shutdown();
}

/// The `Metrics` control op renders a parseable Prometheus exposition,
/// and per-cluster workload counters move when a scripted workload runs.
#[test]
fn metrics_exposition_and_workload_counters_over_the_wire() {
    let db = seeded_db();
    let handle = Server::bind(Arc::clone(&db), quick_cfg(), "127.0.0.1:0").unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();

    let before = c.metrics().unwrap();
    prom::validate(&before).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{before}"));

    // Scripted workload: inserts then scans.
    for i in 0..4 {
        output(
            c.line(&format!(
                r#"pnew stockitem (name = "n{i}", quantity = {i})"#
            ))
            .unwrap(),
        );
    }
    for _ in 0..3 {
        output(
            c.line("forall s in stockitem suchthat (quantity >= 0)")
                .unwrap(),
        );
    }

    let after = c.metrics().unwrap();
    prom::validate(&after).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{after}"));
    for family in [
        "ode_txn_committed_total",
        "ode_storage_record_reads_total",
        "ode_server_requests_total",
        "ode_cluster_scans_total",
    ] {
        assert!(after.contains(family), "missing {family} in exposition");
    }
    let scans = |exp: &str| -> u64 {
        exp.lines()
            .find(|l| l.starts_with("ode_cluster_scans_total") && l.contains("stockitem"))
            .and_then(|l| l.rsplit(' ').next()?.parse().ok())
            .unwrap_or(0)
    };
    assert!(
        scans(&after) >= scans(&before) + 3,
        "cluster scan counter did not move: before={} after={}",
        scans(&before),
        scans(&after)
    );

    c.bye().unwrap();
    handle.shutdown();
}

/// Setting the slow-query threshold through the remote session makes
/// subsequent statements land in the server's slow-query log, which the
/// `SlowLog` control op retrieves.
#[test]
fn slow_query_log_over_the_wire() {
    let db = seeded_db();
    let handle = Server::bind(db, quick_cfg(), "127.0.0.1:0").unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();

    // Threshold 0 logs every statement.
    let out = output(c.line(".slow 0").unwrap());
    assert!(out.contains("0 ms"), "{out}");
    output(c.line("forall s in stockitem").unwrap());

    let log = c.slow_log().unwrap();
    assert!(log.contains("forall s in stockitem"), "{log}");
    assert!(log.contains("stage."), "per-stage timings missing: {log}");

    c.bye().unwrap();
    handle.shutdown();
}

/// The HTTP listener answers `GET /metrics` with a valid exposition and
/// refuses other paths, without touching the wire protocol port.
#[test]
fn http_metrics_endpoint_serves_exposition() {
    let db = seeded_db();
    let handle = Server::bind(
        db,
        ServerConfig {
            metrics_addr: Some("127.0.0.1:0".parse().unwrap()),
            ..quick_cfg()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let maddr = handle.metrics_addr().expect("metrics listener bound");

    let scrape = |path: &str| -> String {
        let mut s = TcpStream::connect(maddr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        buf
    };

    let resp = scrape("/metrics");
    assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
    assert!(resp.contains("text/plain; version=0.0.4"), "{resp}");
    let body = resp.split("\r\n\r\n").nth(1).expect("has a body");
    prom::validate(body).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{body}"));
    assert!(body.contains("ode_server_accepted_total"), "{body}");

    let resp = scrape("/other");
    assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");

    handle.shutdown();
}

/// Satellite: a v1 client (plain `Line` frames, no trace ids) works
/// against a v2 server — the handshake settles on v1 and requests flow
/// without any framing desync.
#[test]
fn v1_client_negotiates_down_against_v2_server() {
    let db = seeded_db();
    let handle = Server::bind(db, quick_cfg(), "127.0.0.1:0").unwrap();
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    write_frame(&mut raw, &Request::Hello { version: 1 }.encode()).unwrap();
    match Response::decode(&read_frame(&mut raw, 1 << 20).unwrap()).unwrap() {
        Response::Welcome { version } => assert_eq!(version, 1),
        other => panic!("expected Welcome, got {other:?}"),
    }
    // Plain v1 lines still execute statements.
    write_frame(
        &mut raw,
        &Request::Line("forall s in stockitem".into()).encode(),
    )
    .unwrap();
    match Response::decode(&read_frame(&mut raw, 1 << 20).unwrap()).unwrap() {
        Response::Output(out) => assert!(out.contains("0 row(s)"), "{out}"),
        other => panic!("expected Output, got {other:?}"),
    }
    // Framing stays aligned: the very next frame round-trips too.
    write_frame(&mut raw, &Request::Bye.encode()).unwrap();
    match Response::decode(&read_frame(&mut raw, 1 << 20).unwrap()).unwrap() {
        Response::Goodbye => {}
        other => panic!("expected Goodbye, got {other:?}"),
    }
    handle.shutdown();
}

/// Satellite: a v2 client against a v1-era server degrades gracefully —
/// it adopts v1, sends untraced `Line` frames, and reports a clean typed
/// error (not a desync) for v2-only control ops.
#[test]
fn v2_client_degrades_against_v1_server() {
    // A minimal stand-in for the previous release: answers any Hello
    // with Welcome{1}, then serves exactly one Line and a Bye.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        match Request::decode(&read_frame(&mut s, 1 << 20).unwrap()).unwrap() {
            Request::Hello { version } => assert_eq!(version, PROTOCOL_VERSION),
            other => panic!("expected Hello, got {other:?}"),
        }
        write_frame(&mut s, &Response::Welcome { version: 1 }.encode()).unwrap();
        // The downgraded client must send a plain Line — a v1 server
        // would fail to decode a TracedLine frame.
        match Request::decode(&read_frame(&mut s, 1 << 20).unwrap()).unwrap() {
            Request::Line(text) => assert_eq!(text, ".help"),
            other => panic!("v2 frame sent to a v1 server: {other:?}"),
        }
        write_frame(&mut s, &Response::Output("ok".into()).encode()).unwrap();
        match Request::decode(&read_frame(&mut s, 1 << 20).unwrap()).unwrap() {
            Request::Bye => {}
            other => panic!("expected Bye, got {other:?}"),
        }
        write_frame(&mut s, &Response::Goodbye.encode()).unwrap();
    });

    let mut c = Client::connect(addr).unwrap();
    assert_eq!(c.version(), 1);
    assert_eq!(output(c.line(".help").unwrap()), "ok");
    assert_eq!(c.last_trace(), 0, "v1 sessions must not mint trace ids");
    match c.metrics() {
        Err(ClientError::Protocol(msg)) => {
            assert!(msg.contains("v2"), "{msg}");
        }
        other => panic!("expected a typed protocol error, got {other:?}"),
    }
    c.bye().unwrap();
    server.join().unwrap();
}
