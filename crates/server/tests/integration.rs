//! End-to-end serving-layer tests: concurrent clients over one engine,
//! admission control, typed errors, per-request timeouts, and graceful
//! drain with zero dropped in-flight requests.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use ode_core::Database;
use ode_server::client::{Client, ClientError, RemoteLine};
use ode_server::{Server, ServerConfig};

fn quick_cfg() -> ServerConfig {
    ServerConfig {
        poll_interval: Duration::from_millis(5),
        ..ServerConfig::default()
    }
}

/// A database with the inventory schema every test statement targets.
fn seeded_db() -> Arc<Database> {
    let db = Database::in_memory();
    db.define_from_source("class stockitem { string name; int quantity = 0; }")
        .unwrap();
    db.create_cluster("stockitem").unwrap();
    db.create_index("stockitem", "quantity").unwrap();
    Arc::new(db)
}

fn output(line: RemoteLine) -> String {
    match line {
        RemoteLine::Output(s) => s,
        other => panic!("expected output, got {other:?}"),
    }
}

/// The acceptance scenario: 8 concurrent clients run mixed OQL (inserts,
/// `forall` with `suchthat`, `explain`) over one shared database; while
/// all 8 are connected the 9th connection is refused with a typed
/// admission error; graceful shutdown then drains with zero dropped
/// in-flight requests.
#[test]
fn eight_concurrent_clients_admission_and_drain() {
    const CLIENTS: usize = 8;
    let db = seeded_db();
    let handle = Server::bind(
        db,
        ServerConfig {
            max_connections: CLIENTS,
            ..quick_cfg()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = handle.addr();

    let connected = Arc::new(Barrier::new(CLIENTS + 1));
    let admission_checked = Arc::new(Barrier::new(CLIENTS + 1));
    let responses = Arc::new(AtomicUsize::new(0));

    let workers: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let connected = Arc::clone(&connected);
            let admission_checked = Arc::clone(&admission_checked);
            let responses = Arc::clone(&responses);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("worker connect");
                connected.wait();
                // Hold the slot until the main thread has seen the 9th
                // connection bounce.
                admission_checked.wait();
                // Mixed OQL: inserts with per-thread tags…
                for i in 0..5 {
                    let tag = (t * 1000 + i) as i64;
                    let out = output(
                        c.line(&format!(
                            r#"pnew stockitem (name = "w{t}", quantity = {tag})"#
                        ))
                        .unwrap(),
                    );
                    assert!(out.starts_with("created "), "{out}");
                    responses.fetch_add(1, Ordering::Relaxed);
                }
                // …selections seeing exactly this thread's rows…
                let out = output(
                    c.line(&format!(
                        "forall s in stockitem suchthat (quantity >= {} && quantity < {})",
                        t * 1000,
                        t * 1000 + 1000
                    ))
                    .unwrap(),
                );
                assert!(out.contains("5 row(s)"), "thread {t}: {out}");
                assert!(out.contains(&format!("w{t}")), "thread {t}: {out}");
                responses.fetch_add(1, Ordering::Relaxed);
                // …and explain, which must report the indexed plan.
                let out = output(
                    c.line(&format!(
                        "explain forall s in stockitem suchthat (quantity == {})",
                        t * 1000
                    ))
                    .unwrap(),
                );
                assert!(out.contains("index probe on `quantity`"), "{out}");
                responses.fetch_add(1, Ordering::Relaxed);
                c.bye().unwrap();
            })
        })
        .collect();

    connected.wait();
    // All 8 slots taken: the 9th connection must bounce with a *typed*
    // admission error, not a hang or a raw disconnect.
    match Client::connect(addr) {
        Err(ClientError::Rejected(msg)) => assert!(msg.contains("capacity"), "{msg}"),
        other => panic!("expected admission rejection, got {other:?}"),
    }
    admission_checked.wait();

    for w in workers {
        w.join().unwrap();
    }
    assert_eq!(responses.load(Ordering::Relaxed), CLIENTS * 7);

    let stats = handle.server_stats();
    assert_eq!(stats.accepted, CLIENTS as u64);
    assert_eq!(stats.rejected_admission, 1);
    assert_eq!(stats.timed_out, 0);
    assert!(stats.requests >= (CLIENTS * 7) as u64, "{stats:?}");
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0, "{stats:?}");

    // Engine state reflects every client's writes exactly once.
    let db = handle.database();
    assert_eq!(
        db.extent_size("stockitem", true).unwrap(),
        CLIENTS * 5,
        "all inserts visible"
    );

    let report = handle.shutdown();
    assert!(report.drained, "{report:?}");
    assert_eq!(report.connections_remaining, 0);
}

/// Shutdown must let requests already executing finish and flush their
/// responses: clients keep issuing scans while the server drains, and no
/// accepted request may yield a torn or missing response.
#[test]
fn graceful_shutdown_preserves_in_flight_requests() {
    let db = seeded_db();
    {
        let mut session = ode_shell::Session::with_shared(Arc::clone(&db));
        for i in 0..2000 {
            let out = session.statement(&format!(
                r#"pnew stockitem (name = "n{i}", quantity = {i})"#
            ));
            assert!(out.starts_with("created"), "{out}");
        }
    }
    let handle = Server::bind(db, quick_cfg(), "127.0.0.1:0").unwrap();
    let addr = handle.addr();

    let worker = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect");
        let mut completed = 0usize;
        loop {
            // A full scan with a predicate — a deliberately chunky request.
            match c.line("forall s in stockitem suchthat (quantity >= 0)") {
                Ok(RemoteLine::Output(out)) => {
                    // A drained response must still be complete.
                    assert!(out.contains("2000 row(s)"), "torn response: …{}", {
                        let tail: String = out.chars().rev().take(40).collect();
                        tail.chars().rev().collect::<String>()
                    });
                    completed += 1;
                }
                Ok(RemoteLine::Goodbye) => break,
                Ok(other) => panic!("unexpected {other:?}"),
                // The server never kills a connection mid-request; the
                // only acceptable end is Goodbye (handled above) or EOF
                // after our *next* send once the server closed.
                Err(e) => {
                    assert!(e.is_transport(), "non-transport failure: {e}");
                    break;
                }
            }
        }
        completed
    });

    // Let the worker get a few requests in flight, then drain.
    std::thread::sleep(Duration::from_millis(150));
    let report = handle.shutdown();
    let completed = worker.join().unwrap();
    assert!(report.drained, "{report:?}");
    assert!(completed > 0, "worker never completed a request");
}

/// Admission slots are released when a client disconnects.
#[test]
fn admission_slot_released_on_disconnect() {
    let db = seeded_db();
    let handle = Server::bind(
        db,
        ServerConfig {
            max_connections: 1,
            ..quick_cfg()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = handle.addr();

    let c1 = Client::connect(addr).unwrap();
    match Client::connect(addr) {
        Err(ClientError::Rejected(_)) => {}
        other => panic!("expected rejection, got {other:?}"),
    }
    c1.bye().unwrap();

    // The slot frees as soon as the connection thread winds down.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut admitted = None;
    while Instant::now() < deadline {
        match Client::connect(addr) {
            Ok(c) => {
                admitted = Some(c);
                break;
            }
            Err(ClientError::Rejected(_)) => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    let mut c = admitted.expect("slot never released");
    c.ping().unwrap();
    drop(c);
    handle.shutdown();
}

/// Requests over the execution budget are answered with a typed timeout
/// error — and the session survives to serve the next request.
#[test]
fn per_request_timeout_is_typed_and_nonfatal() {
    let db = seeded_db();
    let handle = Server::bind(
        db,
        ServerConfig {
            request_timeout: Duration::ZERO,
            ..quick_cfg()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    for _ in 0..2 {
        match c.line("forall s in stockitem") {
            Err(ClientError::Timeout(msg)) => assert!(msg.contains("budget"), "{msg}"),
            other => panic!("expected typed timeout, got {other:?}"),
        }
    }
    // Control ops are not statements and carry no execution budget.
    c.ping().unwrap();
    let stats = handle.server_stats();
    assert!(stats.timed_out >= 2, "{stats:?}");
    handle.shutdown();
}

/// The handshake refuses other protocol versions with a typed error.
#[test]
fn protocol_version_mismatch_is_refused() {
    use ode_wire::protocol::{read_frame, write_frame, Request, Response};

    let db = seeded_db();
    let handle = Server::bind(db, quick_cfg(), "127.0.0.1:0").unwrap();
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    write_frame(&mut raw, &Request::Hello { version: 999 }.encode()).unwrap();
    let resp = Response::decode(&read_frame(&mut raw, 1 << 20).unwrap()).unwrap();
    match resp {
        Response::Error {
            kind: ode_wire::protocol::ErrorKind::Protocol,
            message,
        } => assert!(message.contains("protocol v1"), "{message}"),
        other => panic!("expected protocol error, got {other:?}"),
    }
    drop(raw);

    // And through the client: a clean typed error, not a panic.
    assert!(handle.server_stats().handshake_failures >= 1);
    handle.shutdown();
}

/// Oversized requests bounce with a typed error.
#[test]
fn oversized_request_is_refused() {
    let db = seeded_db();
    let handle = Server::bind(
        db,
        ServerConfig {
            max_request_bytes: 64,
            ..quick_cfg()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    let big = format!(
        "forall s in stockitem suchthat (name == \"{}\")",
        "x".repeat(256)
    );
    match c.line(&big) {
        Err(ClientError::TooLarge(msg)) => assert!(msg.contains("64"), "{msg}"),
        other => panic!("expected too-large error, got {other:?}"),
    }
    handle.shutdown();
}

/// `.server` and telemetry-JSON control ops work over the wire, and the
/// full local meta-command surface (multi-line DDL, `.stats`, `explain`,
/// `.exit`) behaves identically through a remote session.
#[test]
fn control_ops_and_shell_parity_over_the_wire() {
    let db = Arc::new(Database::in_memory());
    let handle = Server::bind(db, quick_cfg(), "127.0.0.1:0").unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();

    // Multi-line DDL needs Continue round-trips, like the local REPL.
    assert_eq!(c.line("class doc {").unwrap(), RemoteLine::Continue);
    assert_eq!(
        c.line("    string title; int rev = 0;").unwrap(),
        RemoteLine::Continue
    );
    let out = output(c.line("}").unwrap());
    assert!(out.contains("defined class(es): doc"), "{out}");
    output(c.line("create cluster doc").unwrap());
    let out = output(c.line(r#"pnew doc (title = "paper", rev = 1)"#).unwrap());
    assert!(out.starts_with("created "), "{out}");

    // Statically detectable mistakes come back as the typed analysis
    // kind — rejected before any transaction — and do not kill the
    // session.
    match c.line("forall x in nowhere") {
        Err(ClientError::Analysis(msg)) => {
            assert!(msg.contains("unknown class"), "{msg}");
            assert!(msg.contains("A001"), "{msg}");
        }
        other => panic!("expected analysis error, got {other:?}"),
    }

    // Runtime-only failures keep the engine kind.
    match c.line(".show 99:0.0") {
        Err(ClientError::Engine(msg)) => assert!(msg.contains("no such object"), "{msg}"),
        other => panic!("expected engine error, got {other:?}"),
    }

    // Meta-commands from the local shell work remotely.
    let out = output(c.line("forall d in doc suchthat (rev == 1)").unwrap());
    assert!(out.contains("1 row(s)"), "{out}");
    let out = output(c.line(".classes").unwrap());
    assert!(out.contains("doc"), "{out}");
    let out = output(c.line(".stats").unwrap());
    assert!(out.contains("txn.committed"), "{out}");
    let out = output(c.line(".stats profiles").unwrap());
    assert!(out.contains("doc"), "{out}");

    // Control ops.
    c.ping().unwrap();
    let stats = c.server_stats().unwrap();
    assert!(stats.contains("server.accepted"), "{stats}");
    assert!(stats.contains("server.request_latency.count"), "{stats}");
    let json = c.telemetry_json().unwrap();
    assert!(json.contains("\"txn\""), "{json}");
    assert_eq!(json.matches('{').count(), json.matches('}').count());

    // `.exit` ends the remote session with Goodbye.
    assert_eq!(c.line(".exit").unwrap(), RemoteLine::Goodbye);
    handle.shutdown();
}

/// Read-only requests (`forall`, `explain`, `.show`) go down the
/// snapshot read path: they bump `read_txns` but never acquire the
/// writer gate, so `write_txns` and the `gate_wait` sample count stay
/// exactly flat across a burst of query traffic.
#[test]
fn read_only_requests_skip_the_writer_gate() {
    let db = seeded_db();
    let handle = Server::bind(Arc::clone(&db), quick_cfg(), "127.0.0.1:0").unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();

    // One write so the queries below have something to see.
    let out = output(
        c.line(r#"pnew stockitem (name = "gear", quantity = 7)"#)
            .unwrap(),
    );
    let oid = out.trim_start_matches("created ").to_string();

    let before = db.telemetry().txn;
    for _ in 0..10 {
        let out = output(
            c.line("forall s in stockitem suchthat (quantity == 7)")
                .unwrap(),
        );
        assert!(out.contains("1 row(s)"), "{out}");
        let out = output(
            c.line("explain forall s in stockitem suchthat (quantity == 7)")
                .unwrap(),
        );
        assert!(out.contains("index probe"), "{out}");
        let out = output(c.line(&format!(".show {oid}")).unwrap());
        assert!(out.contains("gear"), "{out}");
    }
    let after = db.telemetry().txn;

    assert!(
        after.read_txns >= before.read_txns + 30,
        "read traffic not counted: before={} after={}",
        before.read_txns,
        after.read_txns
    );
    assert_eq!(
        after.write_txns, before.write_txns,
        "a read-only request started a write transaction"
    );
    assert_eq!(
        after.gate_wait.count, before.gate_wait.count,
        "a read-only request waited on the writer gate"
    );

    handle.shutdown();
}

/// Connections arriving during a drain are refused with a typed
/// shutdown error (when the accept loop is still winding down) or a
/// plain transport error (once the listener is gone) — never a hang.
#[test]
fn connect_after_shutdown_fails_fast() {
    let db = seeded_db();
    let handle = Server::bind(db, quick_cfg(), "127.0.0.1:0").unwrap();
    let addr = handle.addr();
    handle.shutdown();
    let started = Instant::now();
    match Client::connect(addr) {
        Err(ClientError::Transport(_)) | Err(ClientError::ShuttingDown(_)) => {}
        Ok(_) => panic!("connected to a shut-down server"),
        Err(e) => panic!("unexpected error: {e}"),
    }
    assert!(started.elapsed() < Duration::from_secs(5));
}

/// The live-subscription acceptance scenario: a remote client registers
/// a predicate over a cluster and receives a `Push` frame for a matching
/// commit made by *another* connection, with one blocking wait and no
/// request polling. Non-matching commits stay silent, unsubscribe stops
/// the stream, and the serving-layer gauges account for all of it.
#[test]
fn subscriber_receives_push_without_polling() {
    let db = seeded_db();
    let handle = Server::bind(db, quick_cfg(), "127.0.0.1:0").unwrap();
    let addr = handle.addr();

    let mut sub = Client::connect(addr).unwrap();
    let sub_id = sub.subscribe("stockitem", "quantity < 5").unwrap();

    let mut writer = Client::connect(addr).unwrap();
    // A non-matching commit first: it must never produce a push.
    output(
        writer
            .line(r#"pnew stockitem (name = "bulk", quantity = 900)"#)
            .unwrap(),
    );
    // Then the matching one.
    output(
        writer
            .line(r#"pnew stockitem (name = "scarce", quantity = 2)"#)
            .unwrap(),
    );

    // One blocking wait on the subscriber — no polling request loop —
    // must deliver the push for the matching commit.
    let push = sub
        .next_push(Duration::from_secs(10))
        .unwrap()
        .expect("no push arrived within 10s of the matching commit");
    assert_eq!(push.sub_id, sub_id);
    assert!(push.epoch > 0);
    assert!(push.object.contains("scarce"), "{}", push.object);
    assert!(push.object.contains("stockitem"), "{}", push.object);

    // No second push is owed: the quantity-900 row never matched.
    assert!(sub.next_push(Duration::from_millis(200)).unwrap().is_none());

    // After unsubscribing, further matching commits stay silent.
    sub.unsubscribe(sub_id).unwrap();
    output(
        writer
            .line(r#"pnew stockitem (name = "late", quantity = 1)"#)
            .unwrap(),
    );
    assert!(sub.next_push(Duration::from_millis(300)).unwrap().is_none());

    let stats = handle.server_stats();
    assert_eq!(stats.pushes_sent, 1, "exactly one push crossed the wire");
    assert_eq!(stats.push_dropped, 0);
    assert_eq!(
        stats.subscriptions, 0,
        "unsubscribe must release the subscription gauge"
    );
    assert_eq!(stats.push_outbox_depth, 0);

    writer.bye().unwrap();
    sub.bye().unwrap();
    handle.shutdown();
}

/// A subscription against an unknown cluster or an unparsable predicate
/// is refused with a typed error, not a dead subscription.
#[test]
fn bad_subscriptions_are_refused_typed() {
    let db = seeded_db();
    let handle = Server::bind(db, quick_cfg(), "127.0.0.1:0").unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    match c.subscribe("nosuchclass", "quantity < 5") {
        Err(ClientError::Engine(msg)) => assert!(msg.contains("nosuchclass"), "{msg}"),
        other => panic!("expected engine error, got {other:?}"),
    }
    match c.subscribe("stockitem", "quantity <") {
        Err(ClientError::Engine(_)) | Err(ClientError::Analysis(_)) => {}
        other => panic!("expected parse refusal, got {other:?}"),
    }
    assert_eq!(handle.server_stats().subscriptions, 0);
    c.bye().unwrap();
    handle.shutdown();
}
