//! Property-based tests for the data-model layer: the value codec, the
//! total order on values, set algebra laws, and the expression
//! parser/printer pair.

use proptest::prelude::*;

use ode_model::encode::{decode_value, encode_value};
use ode_model::{parse_expr, Oid, SetValue, Value, VersionRef};
use ode_storage::RecordId;

fn leaf_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        ".*{0,24}".prop_map(Value::Str),
        (any::<u32>(), any::<u32>(), any::<u16>()).prop_map(|(c, p, s)| {
            Value::Ref(Oid {
                cluster: c,
                rid: RecordId { page: p, slot: s },
            })
        }),
        (any::<u32>(), any::<u32>(), any::<u16>(), any::<u32>()).prop_map(|(c, p, s, v)| {
            Value::VRef(VersionRef {
                oid: Oid {
                    cluster: c,
                    rid: RecordId { page: p, slot: s },
                },
                version: v,
            })
        }),
    ]
}

fn value() -> impl Strategy<Value = Value> {
    leaf_value().prop_recursive(3, 32, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            prop::collection::vec(inner, 0..6)
                .prop_map(|items| Value::Set(SetValue::from_iter(items))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode/decode is the identity on all values.
    #[test]
    fn value_codec_roundtrip(v in value()) {
        let bytes = encode_value(&v);
        let back = decode_value(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    /// The order on values is total and antisymmetric; equal values hash
    /// equally.
    #[test]
    fn value_order_is_lawful(a in value(), b in value(), c in value()) {
        use std::cmp::Ordering;
        // Totality + antisymmetry.
        match a.cmp(&b) {
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
            Ordering::Equal => {
                prop_assert_eq!(b.cmp(&a), Ordering::Equal);
                use std::collections::hash_map::DefaultHasher;
                use std::hash::{Hash, Hasher};
                let h = |v: &Value| {
                    let mut s = DefaultHasher::new();
                    v.hash(&mut s);
                    s.finish()
                };
                prop_assert_eq!(h(&a), h(&b), "Eq ⇒ same hash");
            }
        }
        // Transitivity (on the ≤ relation).
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
    }

    /// Set insertion is idempotent and order-insensitive for equality.
    #[test]
    fn set_laws(items in prop::collection::vec(value(), 0..12)) {
        let s1 = SetValue::from_iter(items.clone());
        let mut rev = items.clone();
        rev.reverse();
        let s2 = SetValue::from_iter(rev);
        prop_assert_eq!(&s1, &s2, "set equality ignores insertion order");
        // Inserting an existing element changes nothing.
        let mut s3 = s1.clone();
        for v in items.iter() {
            prop_assert!(!s3.insert(v.clone()), "duplicate insert must report false");
        }
        prop_assert_eq!(&s3, &s1);
        // Union/intersection/difference respect cardinality.
        prop_assert_eq!(s1.union(&s2).len(), s1.len());
        prop_assert_eq!(s1.intersection(&s2).len(), s1.len());
        prop_assert_eq!(s1.difference(&s2).len(), 0);
    }

    /// Codec preserves set iteration (insertion) order, which the fixpoint
    /// cursor of §3.2 depends on.
    #[test]
    fn codec_preserves_set_order(items in prop::collection::vec(any::<i64>(), 0..20)) {
        let s = SetValue::from_iter(items.into_iter().map(Value::Int));
        let order: Vec<Value> = s.iter().cloned().collect();
        let v = Value::Set(s);
        let Value::Set(back) = decode_value(&encode_value(&v)).unwrap() else {
            return Err(TestCaseError::fail("wrong variant"));
        };
        let back_order: Vec<Value> = back.iter().cloned().collect();
        prop_assert_eq!(back_order, order);
    }
}

// ------------------------------------------------------------ expressions

/// Source text generator for well-formed expressions over fields a, b, c.
fn expr_src() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just("$p".to_string()),
        (0i64..1000).prop_map(|n| n.to_string()),
        Just("1.5".to_string()),
        Just("true".to_string()),
        Just("'x'".to_string()),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        (inner.clone(), inner).prop_flat_map(|(l, r)| {
            prop_oneof![
                Just(format!("({l} + {r})")),
                Just(format!("({l} - {r})")),
                Just(format!("({l} * {r})")),
                Just(format!("({l} == {r})")),
                Just(format!("({l} < {r})")),
                Just(format!("({l} && {r})")),
                Just(format!("({l} || {r})")),
                Just(format!("!({l})")),
                Just(format!("-({l})")),
            ]
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse ∘ print = identity on parsed expressions: printing an AST and
    /// re-parsing yields the same AST (printer/parser agreement).
    #[test]
    fn parse_print_roundtrip(src in expr_src()) {
        let e1 = parse_expr(&src).unwrap();
        let printed = e1.to_string();
        let e2 = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse of {printed:?}: {err}"));
        prop_assert_eq!(e1, e2);
    }

    /// The parser never panics on arbitrary input (total function).
    #[test]
    fn parser_is_total(src in ".{0,80}") {
        let _ = parse_expr(&src);
    }

    /// Expanding whitespace between tokens does not change parse results.
    #[test]
    fn whitespace_insensitive(src in expr_src()) {
        prop_assume!(!src.contains('\'') && !src.contains('"'));
        let spaced = format!("  \t{}\n ", src.replace(' ', " \t\n  "));
        prop_assert_eq!(parse_expr(&src).unwrap(), parse_expr(&spaced).unwrap());
    }

    /// String literals round-trip multibyte content through the parser.
    #[test]
    fn multibyte_string_literals(content in "\\PC{0,12}") {
        prop_assume!(!content.contains(['"', '\\']));
        let src = format!("\"{content}\"");
        let e = parse_expr(&src).unwrap();
        prop_assert_eq!(e, ode_model::Expr::Lit(Value::Str(content)));
    }
}
