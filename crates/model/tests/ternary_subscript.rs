//! Tests for the C++-style conditional (`?:`) and subscript (`[]`)
//! operators in the expression language.

use std::collections::HashMap;

use ode_model::eval::EvalCtx;
use ode_model::{parse_expr, ClassBuilder, Schema, Type, Value};

fn schema() -> (Schema, ode_model::ObjState) {
    let mut s = Schema::new();
    let id = s
        .define(
            ClassBuilder::new("item")
                .field_default("qty", Type::Int, 7)
                .field("bins", Type::Array(Box::new(Type::Int)))
                .field_default("name", Type::Str, "dram"),
        )
        .unwrap();
    let mut obj = s.new_object(id).unwrap();
    obj.fields[1] = Value::Array(vec![Value::Int(10), Value::Int(20), Value::Int(30)]);
    (s, obj)
}

fn eval(src: &str) -> Value {
    let (s, obj) = schema();
    EvalCtx::new(&s)
        .with_this(&obj)
        .eval(&parse_expr(src).unwrap())
        .unwrap()
}

fn eval_err(src: &str) -> String {
    let (s, obj) = schema();
    EvalCtx::new(&s)
        .with_this(&obj)
        .eval(&parse_expr(src).unwrap())
        .unwrap_err()
        .to_string()
}

#[test]
fn ternary_basics() {
    assert_eq!(eval("true ? 1 : 2"), Value::Int(1));
    assert_eq!(eval("false ? 1 : 2"), Value::Int(2));
    assert_eq!(eval("qty > 5 ? 'hi' : 'lo'"), Value::Str("hi".into()));
    // Nested / right-associative.
    assert_eq!(eval("false ? 1 : false ? 2 : 3"), Value::Int(3));
    assert_eq!(eval("true ? false ? 1 : 2 : 3"), Value::Int(2));
}

#[test]
fn ternary_is_lazy() {
    // The untaken branch would error (division by zero) if evaluated.
    assert_eq!(eval("true ? 1 : 1 / 0"), Value::Int(1));
    assert_eq!(eval("false ? 1 / 0 : 2"), Value::Int(2));
}

#[test]
fn ternary_condition_must_be_bool() {
    let msg = eval_err("3 ? 1 : 2");
    assert!(msg.contains("boolean"), "{msg}");
}

#[test]
fn subscript_arrays_and_strings() {
    assert_eq!(eval("bins[0]"), Value::Int(10));
    assert_eq!(eval("bins[2]"), Value::Int(30));
    assert_eq!(eval("bins[1 + 1]"), Value::Int(30));
    assert_eq!(eval("bins[0] + bins[1]"), Value::Int(30));
    assert_eq!(eval("name[0]"), Value::Str("d".into()));
}

#[test]
fn subscript_errors() {
    assert!(eval_err("bins[9]").contains("out of bounds"));
    assert!(eval_err("bins[-1]").contains("negative"));
    assert!(eval_err("qty[0]").contains("subscript"));
}

#[test]
fn combined_forms_parse_and_print() {
    for src in [
        "qty > 0 ? bins[0] : bins[1]",
        "bins[qty > 5 ? 0 : 1]",
        "(true ? bins : bins)[1]",
    ] {
        let e = parse_expr(src).unwrap();
        // Printer/parser agreement.
        let e2 = parse_expr(&e.to_string()).unwrap();
        assert_eq!(e, e2, "{src}");
    }
    assert_eq!(eval("bins[qty > 5 ? 0 : 1]"), Value::Int(10));
}

#[test]
fn ternary_in_trigger_action_source() {
    // The DDL layer captures action expressions up to `;` — ternary colons
    // must not confuse it.
    let mut s = Schema::new();
    let builders = ode_model::parse_classes(
        "class item { int qty = 0; int flag = 0; trigger t() : qty < 0 { flag = qty < -10 ? 2 : 1; } }",
    )
    .unwrap();
    let id = s.define(builders.into_iter().next().unwrap()).unwrap();
    let def = s.class(id).unwrap();
    let ode_model::TriggerAction::Assign { expr, .. } = &def.triggers[0].actions[0] else {
        panic!("expected assign action");
    };
    // Evaluate the captured ternary against a state.
    let mut obj = s.new_object(id).unwrap();
    obj.fields[0] = Value::Int(-20);
    let v = EvalCtx::new(&s).with_this(&obj).eval(expr).unwrap();
    assert_eq!(v, Value::Int(2));
}

#[test]
fn params_and_vars_inside_ternary() {
    let (s, obj) = schema();
    let params: HashMap<String, Value> = [("t".to_string(), Value::Int(5))].into();
    let e = parse_expr("qty > $t ? qty - $t : 0").unwrap();
    let v = EvalCtx::new(&s)
        .with_this(&obj)
        .with_params(&params)
        .eval(&e)
        .unwrap();
    assert_eq!(v, Value::Int(2));
}
