//! Expression AST.
//!
//! This small language stands in for the C++ expressions O++ embeds in
//! `suchthat (...)` and `by (...)` clauses (§3.1), constraint bodies (§5),
//! and trigger conditions (§6). Examples straight from the paper:
//!
//! * `sex == 'f' || sex == 'F'` — the `female` specialization constraint,
//! * `quantity <= reorder_level` — the stock reorder trigger condition,
//! * `e.deptno == d.dno` — a join predicate over two loop variables,
//! * `p is student` — the hierarchy type test of §3.1.1.

use crate::value::Value;

/// Binary operators, in O++/C++ spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (numbers; string concatenation).
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (integers).
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit).
    And,
    /// `||` (short-circuit).
    Or,
    /// `in` — set/array membership (left `in` right).
    In,
}

impl BinOp {
    /// C++ spelling (used by `Display` and error messages).
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::In => "in",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Lit(Value),
    /// Bare identifier. Resolution order at evaluation time: bound
    /// variable (loop variable) first, then field of the current object.
    Ident(String),
    /// Explicit activation parameter, written `$name` (trigger arguments).
    Param(String),
    /// Member access through an object value: `e.deptno` / `e->deptno`.
    Path(Box<Expr>, String),
    /// Unary operator application.
    Unary(UnOp, Box<Expr>),
    /// Binary operator application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Method call. With `recv == None` the method is looked up on the
    /// current object (constraint bodies); otherwise on the receiver.
    Call {
        /// Receiver object expression, if any.
        recv: Option<Box<Expr>>,
        /// Method name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// The paper's type test (§3.1.1): `p is student`. True when the
    /// operand references an object whose class is (a subclass of) the
    /// named class.
    Is(Box<Expr>, String),
    /// C++ conditional: `cond ? a : b` (lazy in the untaken branch).
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Array subscript: `arr[i]` (0-based, as in C++).
    Index(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// Convenience constructor for an identifier.
    pub fn ident(name: impl Into<String>) -> Expr {
        Expr::Ident(name.into())
    }

    /// Convenience constructor for a binary application.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// All identifiers this expression reads at the *top level* (not through
    /// paths) — used by the engine to detect which loop variables a join
    /// predicate mentions.
    pub fn free_idents(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_idents(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_idents<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Lit(_) | Expr::Param(_) => {}
            Expr::Ident(name) => out.push(name),
            Expr::Path(base, _) | Expr::Is(base, _) => base.collect_idents(out),
            Expr::Cond(c, a, b) => {
                c.collect_idents(out);
                a.collect_idents(out);
                b.collect_idents(out);
            }
            Expr::Index(base, ix) => {
                base.collect_idents(out);
                ix.collect_idents(out);
            }
            Expr::Unary(_, e) => e.collect_idents(out),
            Expr::Binary(_, l, r) => {
                l.collect_idents(out);
                r.collect_idents(out);
            }
            Expr::Call { recv, args, .. } => {
                if let Some(r) = recv {
                    r.collect_idents(out);
                }
                for a in args {
                    a.collect_idents(out);
                }
            }
        }
    }
}

impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Ident(n) => write!(f, "{n}"),
            Expr::Param(n) => write!(f, "${n}"),
            Expr::Path(b, n) => write!(f, "{b}.{n}"),
            Expr::Unary(UnOp::Neg, e) => write!(f, "-({e})"),
            Expr::Unary(UnOp::Not, e) => write!(f, "!({e})"),
            Expr::Binary(op, l, r) => write!(f, "({l} {} {r})", op.symbol()),
            Expr::Call { recv, name, args } => {
                if let Some(r) = recv {
                    write!(f, "{r}.")?;
                }
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Is(e, class) => write!(f, "({e} is {class})"),
            Expr::Cond(c, a, b) => write!(f, "({c} ? {a} : {b})"),
            Expr::Index(base, ix) => write!(f, "{base}[{ix}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_structure() {
        let e = Expr::bin(
            BinOp::Or,
            Expr::bin(BinOp::Eq, Expr::ident("sex"), Expr::lit("f")),
            Expr::bin(BinOp::Eq, Expr::ident("sex"), Expr::lit("F")),
        );
        assert_eq!(e.to_string(), r#"((sex == "f") || (sex == "F"))"#);
    }

    #[test]
    fn free_idents_dedup_and_skip_paths() {
        let e = Expr::bin(
            BinOp::And,
            Expr::bin(
                BinOp::Eq,
                Expr::Path(Box::new(Expr::ident("e")), "deptno".into()),
                Expr::Path(Box::new(Expr::ident("d")), "dno".into()),
            ),
            Expr::bin(BinOp::Gt, Expr::ident("e"), Expr::lit(0)),
        );
        assert_eq!(e.free_idents(), vec!["d", "e"]);
    }
}
