//! O++-flavoured class declaration syntax.
//!
//! The paper's thesis is that one language defines, queries, and
//! manipulates the database. This module provides the *definition* part as
//! text, closely following O++'s C++-derived syntax, so schemas can be
//! written the way the paper writes them:
//!
//! ```text
//! class stockitem {
//!     string name;
//!     int    quantity = 0;
//!     int    max_quantity = 15000;
//!     int    reorder_level = 15;
//!     int    on_order = 0;
//!     double price = 5.0;
//!     constraint sane: quantity >= 0 && quantity <= max_quantity;
//!     trigger reorder(amount) : quantity <= reorder_level {
//!         on_order = on_order + $amount;
//!         call notify_purchasing;
//!     }
//! }
//!
//! class female : public person {
//!     string sex;
//!     constraint: sex == 'f' || sex == 'F';
//! }
//! ```
//!
//! Supported member types: `int`, `double`/`float`, `bool`, `string`,
//! `set<T>`, `array<T>`, `ref<Class>` (generic reference, i.e.
//! `persistent Class*`), `vref<Class>` (specific/pinned reference), `any`.
//! `perpetual trigger` declares a perpetual trigger (§6). Comments (`//`
//! and `/* */`) are allowed anywhere.
//!
//! The output is ordinary [`ClassBuilder`]s; constraint and trigger bodies
//! are captured as expression source text and checked by
//! [`crate::Schema::define`] exactly like programmatically-built classes.

use crate::class::ClassBuilder;
use crate::error::{ModelError, Result};
use crate::parser::parse_expr;
use crate::value::{Type, Value};

/// Parse a schema source containing zero or more class declarations, in
/// order (base classes must precede derived ones, as in C++).
pub fn parse_classes(src: &str) -> Result<Vec<ClassBuilder>> {
    let mut p = Ddl::new(src);
    let mut out = Vec::new();
    loop {
        p.skip_ws();
        if p.at_end() {
            return Ok(out);
        }
        out.push(p.class_decl()?);
    }
}

struct Ddl<'a> {
    src: &'a str,
    at: usize,
}

impl<'a> Ddl<'a> {
    fn new(src: &'a str) -> Ddl<'a> {
        Ddl { src, at: 0 }
    }

    fn err(&self, message: impl Into<String>) -> ModelError {
        ModelError::Parse {
            message: message.into(),
            at: self.at,
        }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.at..]
    }

    fn at_end(&self) -> bool {
        self.at >= self.src.len()
    }

    /// Skip whitespace and `//` / `/* */` comments.
    fn skip_ws(&mut self) {
        loop {
            let rest = self.rest();
            let trimmed = rest.trim_start();
            self.at += rest.len() - trimmed.len();
            if let Some(stripped) = self.rest().strip_prefix("//") {
                let line_len = stripped.find('\n').map(|i| i + 1).unwrap_or(stripped.len());
                self.at += 2 + line_len;
                continue;
            }
            if let Some(stripped) = self.rest().strip_prefix("/*") {
                let end = stripped.find("*/").map(|i| i + 2).unwrap_or(stripped.len());
                self.at += 2 + end;
                continue;
            }
            return;
        }
    }

    fn peek_char(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.at += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<()> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{token}`, found `{}`",
                self.rest().chars().take(12).collect::<String>()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        self.skip_ws();
        let rest = self.rest();
        let mut end = 0;
        for (i, c) in rest.char_indices() {
            if (i == 0 && (c.is_ascii_alphabetic() || c == '_'))
                || (i > 0 && (c.is_ascii_alphanumeric() || c == '_'))
            {
                end = i + c.len_utf8();
            } else {
                break;
            }
        }
        if end == 0 {
            return Err(self.err(format!(
                "expected an identifier, found `{}`",
                rest.chars().take(12).collect::<String>()
            )));
        }
        self.at += end;
        Ok(rest[..end].to_string())
    }

    /// Try to consume a keyword (identifier match, not prefix match).
    fn eat_kw(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = self.rest();
        if let Some(tail) = rest.strip_prefix(kw) {
            let after = tail.chars().next();
            if !matches!(after, Some(c) if c.is_ascii_alphanumeric() || c == '_') {
                self.at += kw.len();
                return true;
            }
        }
        false
    }

    /// Capture raw expression source up to (not including) any of the
    /// `stops` characters, validating it parses.
    fn expr_src(&mut self, stops: &[char]) -> Result<String> {
        self.skip_ws();
        let rest = self.rest();
        let mut end = rest.len();
        let mut in_str: Option<char> = None;
        for (i, c) in rest.char_indices() {
            match in_str {
                Some(q) => {
                    if c == q {
                        in_str = None;
                    }
                }
                None => {
                    if c == '\'' || c == '"' {
                        in_str = Some(c);
                    } else if stops.contains(&c) {
                        end = i;
                        break;
                    }
                }
            }
        }
        let text = rest[..end].trim().to_string();
        if text.is_empty() {
            return Err(self.err("expected an expression"));
        }
        // Validate now for a positioned error; Schema::define re-parses.
        parse_expr(&text).map_err(|e| self.err(format!("in expression `{text}`: {e}")))?;
        self.at += end;
        Ok(text)
    }

    fn class_decl(&mut self) -> Result<ClassBuilder> {
        if !self.eat_kw("class") {
            return Err(self.err("expected `class`"));
        }
        let name = self.ident()?;
        let mut b = ClassBuilder::new(name);
        if self.eat(":") {
            loop {
                let _ = self.eat_kw("public") || self.eat_kw("virtual");
                let base = self.ident()?;
                b = b.base(base);
                if !self.eat(",") {
                    break;
                }
            }
        }
        self.expect("{")?;
        loop {
            self.skip_ws();
            if self.eat("}") {
                let _ = self.eat(";");
                return Ok(b);
            }
            if self.at_end() {
                return Err(self.err("unterminated class body (missing `}`)"));
            }
            b = self.member(b)?;
        }
    }

    fn member(&mut self, b: ClassBuilder) -> Result<ClassBuilder> {
        if self.eat_kw("constraint") {
            return self.constraint(b);
        }
        if self.eat_kw("perpetual") {
            if !self.eat_kw("trigger") {
                return Err(self.err("expected `trigger` after `perpetual`"));
            }
            return self.trigger(b, true);
        }
        if self.eat_kw("trigger") {
            return self.trigger(b, false);
        }
        self.field(b)
    }

    fn constraint(&mut self, b: ClassBuilder) -> Result<ClassBuilder> {
        // `constraint [name] : expr ;`
        self.skip_ws();
        let name = if self.peek_char() == Some(':') {
            None
        } else {
            Some(self.ident()?)
        };
        self.expect(":")?;
        let src = self.expr_src(&[';'])?;
        self.expect(";")?;
        Ok(match name {
            Some(n) => b.constraint_named(n, src),
            None => b.constraint(src),
        })
    }

    fn trigger(&mut self, b: ClassBuilder, perpetual: bool) -> Result<ClassBuilder> {
        // `trigger name(params) : condition { actions }`
        let name = self.ident()?;
        self.expect("(")?;
        let mut params: Vec<String> = Vec::new();
        self.skip_ws();
        if !self.eat(")") {
            loop {
                params.push(self.ident()?);
                if self.eat(")") {
                    break;
                }
                self.expect(",")?;
            }
        }
        self.expect(":")?;
        let condition = self.expr_src(&['{'])?;
        let param_refs: Vec<&str> = params.iter().map(|s| s.as_str()).collect();
        let mut b = b.trigger(name, &param_refs, perpetual, condition);
        self.expect("{")?;
        loop {
            self.skip_ws();
            if self.eat("}") {
                return Ok(b);
            }
            if self.at_end() {
                return Err(self.err("unterminated trigger body (missing `}`)"));
            }
            if self.eat_kw("call") {
                let cb = self.ident()?;
                self.expect(";")?;
                b = b.action_callback(cb);
            } else {
                let field = self.ident()?;
                self.expect("=")?;
                let src = self.expr_src(&[';'])?;
                self.expect(";")?;
                b = b.action_assign(field, src);
            }
        }
    }

    fn type_spec(&mut self) -> Result<Type> {
        if self.eat_kw("int") || self.eat_kw("long") {
            return Ok(Type::Int);
        }
        if self.eat_kw("double") || self.eat_kw("float") {
            return Ok(Type::Float);
        }
        if self.eat_kw("bool") {
            return Ok(Type::Bool);
        }
        if self.eat_kw("string") || self.eat_kw("char") {
            // `char*` — consume an optional `*`.
            let _ = self.eat("*");
            return Ok(Type::Str);
        }
        if self.eat_kw("any") {
            return Ok(Type::Any);
        }
        if self.eat_kw("set") {
            self.expect("<")?;
            let inner = self.type_spec()?;
            self.expect(">")?;
            return Ok(Type::Set(Box::new(inner)));
        }
        if self.eat_kw("array") {
            self.expect("<")?;
            let inner = self.type_spec()?;
            self.expect(">")?;
            return Ok(Type::Array(Box::new(inner)));
        }
        if self.eat_kw("ref") || self.eat_kw("persistent") {
            // `ref<dept>` or `persistent dept*`.
            if self.eat("<") {
                let class = self.ident()?;
                self.expect(">")?;
                return Ok(Type::Ref(class));
            }
            let class = self.ident()?;
            self.expect("*")?;
            return Ok(Type::Ref(class));
        }
        if self.eat_kw("vref") {
            self.expect("<")?;
            let class = self.ident()?;
            self.expect(">")?;
            return Ok(Type::VRef(class));
        }
        Err(self.err(format!(
            "expected a type, found `{}`",
            self.rest().chars().take(12).collect::<String>()
        )))
    }

    fn field(&mut self, b: ClassBuilder) -> Result<ClassBuilder> {
        let ty = self.type_spec()?;
        let name = self.ident()?;
        if self.eat("=") {
            let src = self.expr_src(&[';'])?;
            self.expect(";")?;
            // Field defaults must be literal constants.
            let expr = parse_expr(&src)?;
            let value = match expr {
                crate::expr::Expr::Lit(v) => v,
                crate::expr::Expr::Unary(crate::expr::UnOp::Neg, inner) => match *inner {
                    crate::expr::Expr::Lit(Value::Int(i)) => Value::Int(-i),
                    crate::expr::Expr::Lit(Value::Float(x)) => Value::Float(-x),
                    _ => {
                        return Err(
                            self.err(format!("default for `{name}` must be a literal constant"))
                        )
                    }
                },
                _ => {
                    return Err(self.err(format!("default for `{name}` must be a literal constant")))
                }
            };
            return Ok(b.field_default(name, ty, value));
        }
        self.expect(";")?;
        Ok(b.field(name, ty))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::TriggerAction;
    use crate::schema::Schema;

    #[test]
    fn paper_stockitem_declaration() {
        let src = r#"
            // §2.3 of the paper, in O++-flavoured syntax.
            class stockitem {
                string name;
                double allowance = 0.05;
                int    quantity = 0;
                int    max_quantity = 15000;
                double price = 5.0;
                int    reorder_level = 15;
                int    on_order = 0;
                string supplier;
                constraint sane: quantity >= 0 && quantity <= max_quantity;
                trigger reorder(amount) : quantity <= reorder_level {
                    on_order = on_order + $amount;
                    call notify_purchasing;
                }
            }
        "#;
        let builders = parse_classes(src).unwrap();
        assert_eq!(builders.len(), 1);
        let mut schema = Schema::new();
        let id = schema.define(builders.into_iter().next().unwrap()).unwrap();
        let def = schema.class(id).unwrap();
        assert_eq!(def.name, "stockitem");
        assert_eq!(def.own_fields.len(), 8);
        assert_eq!(def.constraints.len(), 1);
        assert_eq!(def.constraints[0].name, "sane");
        let t = &def.triggers[0];
        assert_eq!(t.name, "reorder");
        assert_eq!(t.params, vec!["amount"]);
        assert!(!t.perpetual);
        assert_eq!(t.actions.len(), 2);
        assert!(
            matches!(&t.actions[1], TriggerAction::Callback { name } if name == "notify_purchasing")
        );
        // Defaults applied.
        let obj = schema.new_object(id).unwrap();
        assert_eq!(obj.fields[2], Value::Int(0));
        assert_eq!(obj.fields[3], Value::Int(15000));
    }

    #[test]
    fn paper_female_specialization() {
        let src = r#"
            class person { string name; string sex; }
            class female : public person {
                constraint: sex == 'f' || sex == 'F';
            }
        "#;
        let builders = parse_classes(src).unwrap();
        assert_eq!(builders.len(), 2);
        let mut schema = Schema::new();
        for b in builders {
            schema.define(b).unwrap();
        }
        let female = schema.class_by_name("female").unwrap();
        assert_eq!(female.constraints.len(), 1);
        assert_eq!(female.constraints[0].src, "sex == 'f' || sex == 'F'");
        let person = schema.id_of("person").unwrap();
        assert!(schema.is_subclass(female.id, person));
    }

    #[test]
    fn multiple_inheritance_and_rich_types() {
        let src = r#"
            class a { int x; }
            class b { set<string> tags; array<int> bins; }
            class c : public a, public b {
                ref<a>  friend_a;
                vref<b> pinned_b;
                persistent a* old_style;
                char* cname;
                any blob;
            }
        "#;
        let mut schema = Schema::new();
        for b in parse_classes(src).unwrap() {
            schema.define(b).unwrap();
        }
        let c = schema.class_by_name("c").unwrap();
        assert_eq!(c.bases.len(), 2);
        assert_eq!(c.field("friend_a").unwrap().ty, Type::Ref("a".into()));
        assert_eq!(c.field("pinned_b").unwrap().ty, Type::VRef("b".into()));
        assert_eq!(c.field("old_style").unwrap().ty, Type::Ref("a".into()));
        assert_eq!(c.field("cname").unwrap().ty, Type::Str);
        assert_eq!(c.field("blob").unwrap().ty, Type::Any);
        assert_eq!(c.field("tags").unwrap().ty, Type::Set(Box::new(Type::Str)));
    }

    #[test]
    fn perpetual_trigger_and_comments() {
        let src = r#"
            /* audit example */
            class item {
                int qty = 100; // starts full
                perpetual trigger audit(floor) : qty < $floor {
                    call log_low;
                }
            }
        "#;
        let mut schema = Schema::new();
        let id = schema
            .define(parse_classes(src).unwrap().into_iter().next().unwrap())
            .unwrap();
        let t = &schema.class(id).unwrap().triggers[0];
        assert!(t.perpetual);
        assert_eq!(t.condition_src, "qty < $floor");
    }

    #[test]
    fn negative_defaults() {
        let src = "class t { int x = -5; double y = -1.5; }";
        let mut schema = Schema::new();
        let id = schema
            .define(parse_classes(src).unwrap().into_iter().next().unwrap())
            .unwrap();
        let obj = schema.new_object(id).unwrap();
        assert_eq!(obj.fields[0], Value::Int(-5));
        assert_eq!(obj.fields[1], Value::Float(-1.5));
    }

    #[test]
    fn errors_are_positioned_and_clear() {
        for (src, needle) in [
            ("class", "identifier"),
            ("class x {", "unterminated"),
            ("class x { int; }", "identifier"),
            ("class x { frob y; }", "expected a type"),
            ("class x { int y = z; }", "literal constant"),
            ("class x { constraint: ; }", "expression"),
            (
                "class x { trigger t() : a < b { q; } int a; int b; int q; }",
                "expected `=`",
            ),
            ("struct x {}", "expected `class`"),
        ] {
            let err = parse_classes(src).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "source {src:?} produced {msg:?}, expected needle {needle:?}"
            );
        }
    }

    #[test]
    fn string_stop_chars_do_not_end_expressions() {
        // A `;` inside a string literal must not terminate the constraint.
        let src = r#"class x { string s; constraint: s != "a;b"; }"#;
        let mut schema = Schema::new();
        let id = schema
            .define(parse_classes(src).unwrap().into_iter().next().unwrap())
            .unwrap();
        assert_eq!(
            schema.class(id).unwrap().constraints[0].src,
            r#"s != "a;b""#
        );
    }

    #[test]
    fn empty_source_is_empty_schema() {
        assert!(parse_classes("").unwrap().is_empty());
        assert!(parse_classes("  // just a comment\n").unwrap().is_empty());
    }
}
