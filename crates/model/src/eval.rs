//! Expression evaluation.
//!
//! An [`EvalCtx`] supplies everything an expression may mention:
//!
//! * the **schema** (for method dispatch, `is` tests, and field layouts),
//! * an optional **current object** (`this`) — constraint bodies and
//!   trigger conditions read its fields with bare identifiers,
//! * **variables** — loop variables of a `forall` (each bound to an object
//!   reference) or auxiliary bindings,
//! * **parameters** — trigger activation arguments, written `$name`,
//! * a **resolver** — the engine hook that dereferences object references
//!   (generic refs follow the current version, §4).
//!
//! Semantics follow C++ where the paper leans on it: `&&`/`||`
//! short-circuit, `/` on two ints is integer division, ints promote to
//! doubles in mixed arithmetic.

use std::collections::HashMap;

use crate::error::{ModelError, Result};
use crate::expr::{BinOp, Expr, UnOp};
use crate::oid::{Oid, VersionRef};
use crate::schema::Schema;
use crate::value::{ObjState, Value};

/// Engine hook for dereferencing object references during evaluation.
pub trait Resolver {
    /// Load the *current version* of the object (generic reference, §4).
    fn deref_obj(&self, oid: Oid) -> Result<ObjState>;

    /// Load one pinned version (specific reference, §4).
    fn deref_version(&self, vref: VersionRef) -> Result<ObjState>;
}

/// A resolver for contexts with no database at hand: any dereference fails.
pub struct NoResolver;

impl Resolver for NoResolver {
    fn deref_obj(&self, oid: Oid) -> Result<ObjState> {
        Err(ModelError::Eval(format!(
            "cannot dereference {oid} outside a transaction"
        )))
    }

    fn deref_version(&self, vref: VersionRef) -> Result<ObjState> {
        Err(ModelError::Eval(format!(
            "cannot dereference {vref} outside a transaction"
        )))
    }
}

/// Evaluation context. Build with [`EvalCtx::new`] and chain the `with_*`
/// setters.
pub struct EvalCtx<'a> {
    schema: &'a Schema,
    this: Option<&'a ObjState>,
    vars: Option<&'a HashMap<String, Value>>,
    params: Option<&'a HashMap<String, Value>>,
    resolver: &'a dyn Resolver,
}

impl<'a> EvalCtx<'a> {
    /// Minimal context: schema only.
    pub fn new(schema: &'a Schema) -> EvalCtx<'a> {
        EvalCtx {
            schema,
            this: None,
            vars: None,
            params: None,
            resolver: &NoResolver,
        }
    }

    /// Bind the current object (`this`).
    pub fn with_this(mut self, obj: &'a ObjState) -> Self {
        self.this = Some(obj);
        self
    }

    /// Bind loop variables / auxiliary bindings.
    pub fn with_vars(mut self, vars: &'a HashMap<String, Value>) -> Self {
        self.vars = Some(vars);
        self
    }

    /// Bind trigger activation parameters (`$name`).
    pub fn with_params(mut self, params: &'a HashMap<String, Value>) -> Self {
        self.params = Some(params);
        self
    }

    /// Attach the engine's reference resolver.
    pub fn with_resolver(mut self, r: &'a dyn Resolver) -> Self {
        self.resolver = r;
        self
    }

    /// Evaluate `expr` to a value.
    pub fn eval(&self, expr: &Expr) -> Result<Value> {
        match expr {
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Param(name) => self
                .params
                .and_then(|p| p.get(name))
                .cloned()
                .ok_or_else(|| ModelError::UnknownVar(format!("${name}"))),
            Expr::Ident(name) => self.resolve_ident(name),
            Expr::Path(base, field) => {
                let obj = self.eval_to_object(base)?;
                self.field_of(&obj, field)
            }
            Expr::Unary(op, e) => self.eval_unary(*op, e),
            Expr::Binary(op, l, r) => self.eval_binary(*op, l, r),
            Expr::Call { recv, name, args } => {
                let argv: Vec<Value> = args.iter().map(|a| self.eval(a)).collect::<Result<_>>()?;
                let obj = match recv {
                    Some(r) => self.eval_to_object(r)?,
                    None => self.this.cloned().ok_or_else(|| {
                        ModelError::Eval(format!("method `{name}` called with no current object"))
                    })?,
                };
                let m = self.schema.lookup_method(obj.class, name)?;
                m(&obj, &argv)
            }
            Expr::Cond(c, a, b) => {
                if self.eval(c)?.as_bool()? {
                    self.eval(a)
                } else {
                    self.eval(b)
                }
            }
            Expr::Index(base, ix) => {
                let container = self.eval(base)?;
                let i = self.eval(ix)?.as_int()?;
                match container {
                    Value::Array(items) => {
                        let idx = usize::try_from(i)
                            .map_err(|_| ModelError::Eval(format!("negative array index {i}")))?;
                        items.get(idx).cloned().ok_or_else(|| {
                            ModelError::Eval(format!(
                                "array index {i} out of bounds (len {})",
                                items.len()
                            ))
                        })
                    }
                    Value::Str(s) => {
                        let idx = usize::try_from(i)
                            .map_err(|_| ModelError::Eval(format!("negative string index {i}")))?;
                        s.chars()
                            .nth(idx)
                            .map(|c| Value::Str(c.to_string()))
                            .ok_or_else(|| {
                                ModelError::Eval(format!("string index {i} out of bounds"))
                            })
                    }
                    other => Err(ModelError::Type(format!("cannot subscript {other}"))),
                }
            }
            Expr::Is(e, class_name) => {
                let target = self.schema.id_of(class_name)?;
                let v = self.eval(e)?;
                let class = match &v {
                    Value::Ref(oid) => self.resolver.deref_obj(*oid)?.class,
                    Value::VRef(vr) => self.resolver.deref_version(*vr)?.class,
                    Value::Null => return Ok(Value::Bool(false)),
                    other => {
                        return Err(ModelError::Type(format!(
                            "`is` needs an object reference, got {other}"
                        )))
                    }
                };
                Ok(Value::Bool(self.schema.is_subclass(class, target)))
            }
        }
    }

    /// Evaluate and require a boolean (suchthat / constraint / trigger).
    pub fn eval_bool(&self, expr: &Expr) -> Result<bool> {
        self.eval(expr)?.as_bool()
    }

    fn resolve_ident(&self, name: &str) -> Result<Value> {
        if let Some(v) = self.vars.and_then(|v| v.get(name)) {
            return Ok(v.clone());
        }
        if let Some(this) = self.this {
            let def = self.schema.class(this.class)?;
            if let Ok(idx) = def.field_index(name) {
                return Ok(this.fields[idx].clone());
            }
        }
        Err(ModelError::UnknownVar(name.to_string()))
    }

    /// Evaluate an expression that must denote an object, dereferencing
    /// Ref/VRef values through the resolver.
    fn eval_to_object(&self, expr: &Expr) -> Result<ObjState> {
        match self.eval(expr)? {
            Value::Ref(oid) => self.resolver.deref_obj(oid),
            Value::VRef(vr) => self.resolver.deref_version(vr),
            Value::Null => Err(ModelError::Eval("null dereference".into())),
            other => Err(ModelError::Type(format!(
                "expected an object reference, got {other}"
            ))),
        }
    }

    fn field_of(&self, obj: &ObjState, field: &str) -> Result<Value> {
        let def = self.schema.class(obj.class)?;
        let idx = def.field_index(field)?;
        Ok(obj.fields[idx].clone())
    }

    fn eval_unary(&self, op: UnOp, e: &Expr) -> Result<Value> {
        let v = self.eval(e)?;
        match (op, v) {
            (UnOp::Neg, Value::Int(i)) => {
                Ok(Value::Int(i.checked_neg().ok_or_else(|| {
                    ModelError::Eval("integer overflow in negation".into())
                })?))
            }
            (UnOp::Neg, Value::Float(x)) => Ok(Value::Float(-x)),
            (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
            (UnOp::Neg, other) => Err(ModelError::Type(format!("cannot negate {other}"))),
            (UnOp::Not, other) => Err(ModelError::Type(format!(
                "`!` needs a boolean, got {other}"
            ))),
        }
    }

    fn eval_binary(&self, op: BinOp, l: &Expr, r: &Expr) -> Result<Value> {
        // Short-circuit logicals first.
        match op {
            BinOp::And => {
                return Ok(Value::Bool(
                    self.eval(l)?.as_bool()? && self.eval(r)?.as_bool()?,
                ))
            }
            BinOp::Or => {
                return Ok(Value::Bool(
                    self.eval(l)?.as_bool()? || self.eval(r)?.as_bool()?,
                ))
            }
            _ => {}
        }
        let lv = self.eval(l)?;
        let rv = self.eval(r)?;
        match op {
            BinOp::Eq => Ok(Value::Bool(lv == rv)),
            BinOp::Ne => Ok(Value::Bool(lv != rv)),
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let ord = compare(&lv, &rv)?;
                Ok(Value::Bool(match op {
                    BinOp::Lt => ord.is_lt(),
                    BinOp::Le => ord.is_le(),
                    BinOp::Gt => ord.is_gt(),
                    _ => ord.is_ge(),
                }))
            }
            BinOp::In => match &rv {
                Value::Set(s) => Ok(Value::Bool(s.contains(&lv))),
                Value::Array(items) => Ok(Value::Bool(items.contains(&lv))),
                other => Err(ModelError::Type(format!(
                    "`in` needs a set or array on the right, got {other}"
                ))),
            },
            BinOp::Add => match (&lv, &rv) {
                (Value::Str(a), Value::Str(b)) => Ok(Value::Str(format!("{a}{b}"))),
                _ => arith(op, &lv, &rv),
            },
            BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => arith(op, &lv, &rv),
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }
}

/// Ordered comparison: numbers compare across int/float; strings compare
/// lexicographically; anything else is a type error (equality, by contrast,
/// is defined for all values).
fn compare(l: &Value, r: &Value) -> Result<std::cmp::Ordering> {
    match (l, r) {
        (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_))
        | (Value::Str(_), Value::Str(_)) => Ok(l.cmp(r)),
        _ => Err(ModelError::Type(format!("cannot order {l} against {r}"))),
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let a = *a;
            let b = *b;
            let out = match op {
                BinOp::Add => a.checked_add(b),
                BinOp::Sub => a.checked_sub(b),
                BinOp::Mul => a.checked_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return Err(ModelError::Eval("integer division by zero".into()));
                    }
                    a.checked_div(b)
                }
                BinOp::Mod => {
                    if b == 0 {
                        return Err(ModelError::Eval("integer modulo by zero".into()));
                    }
                    a.checked_rem(b)
                }
                _ => unreachable!(),
            };
            out.map(Value::Int)
                .ok_or_else(|| ModelError::Eval("integer overflow".into()))
        }
        (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
            let a = l.as_float()?;
            let b = r.as_float()?;
            let out = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                BinOp::Mod => return Err(ModelError::Type("`%` needs integers".into())),
                _ => unreachable!(),
            };
            Ok(Value::Float(out))
        }
        _ => Err(ModelError::Type(format!(
            "cannot apply `{}` to {l} and {r}",
            op.symbol()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassBuilder;
    use crate::parser::parse_expr;
    use crate::value::Type;

    fn schema_with_item() -> (Schema, crate::class::ClassId) {
        let mut s = Schema::new();
        let id = s
            .define(
                ClassBuilder::new("stockitem")
                    .field("name", Type::Str)
                    .field_default("quantity", Type::Int, 100)
                    .field_default("reorder_level", Type::Int, 20)
                    .field_default("price", Type::Float, 1.5),
            )
            .unwrap();
        (s, id)
    }

    fn eval_with(src: &str, schema: &Schema, this: &ObjState) -> Result<Value> {
        let e = parse_expr(src).unwrap();
        EvalCtx::new(schema).with_this(this).eval(&e)
    }

    #[test]
    fn fields_resolve_on_this() {
        let (s, id) = schema_with_item();
        let mut obj = s.new_object(id).unwrap();
        obj.fields[0] = Value::Str("512 dram".into());
        assert_eq!(
            eval_with("name", &s, &obj).unwrap(),
            Value::Str("512 dram".into())
        );
        assert_eq!(
            eval_with("quantity <= reorder_level", &s, &obj).unwrap(),
            Value::Bool(false)
        );
        obj.fields[1] = Value::Int(5);
        assert_eq!(
            eval_with("quantity <= reorder_level", &s, &obj).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn arithmetic_and_promotion() {
        let (s, id) = schema_with_item();
        let obj = s.new_object(id).unwrap();
        assert_eq!(eval_with("2 + 3 * 4", &s, &obj).unwrap(), Value::Int(14));
        assert_eq!(eval_with("7 / 2", &s, &obj).unwrap(), Value::Int(3));
        assert_eq!(eval_with("7.0 / 2", &s, &obj).unwrap(), Value::Float(3.5));
        assert_eq!(eval_with("7 % 3", &s, &obj).unwrap(), Value::Int(1));
        assert_eq!(
            eval_with("price * quantity", &s, &obj).unwrap(),
            Value::Float(150.0)
        );
        assert_eq!(eval_with("-quantity", &s, &obj).unwrap(), Value::Int(-100));
    }

    #[test]
    fn division_by_zero_is_an_eval_error() {
        let (s, id) = schema_with_item();
        let obj = s.new_object(id).unwrap();
        assert!(matches!(
            eval_with("1 / 0", &s, &obj),
            Err(ModelError::Eval(_))
        ));
        assert!(matches!(
            eval_with("1 % 0", &s, &obj),
            Err(ModelError::Eval(_))
        ));
        // Float division by zero is IEEE infinity, like C++.
        assert_eq!(
            eval_with("1.0 / 0.0", &s, &obj).unwrap(),
            Value::Float(f64::INFINITY)
        );
    }

    #[test]
    fn short_circuit_skips_rhs_errors() {
        let (s, id) = schema_with_item();
        let obj = s.new_object(id).unwrap();
        // RHS would fail (unknown var) but is never evaluated.
        assert_eq!(
            eval_with("false && ghost", &s, &obj).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval_with("true || ghost", &s, &obj).unwrap(),
            Value::Bool(true)
        );
        assert!(eval_with("true && ghost", &s, &obj).is_err());
    }

    #[test]
    fn string_ops() {
        let (s, id) = schema_with_item();
        let obj = s.new_object(id).unwrap();
        assert_eq!(
            eval_with(r#""at" + "&t""#, &s, &obj).unwrap(),
            Value::Str("at&t".into())
        );
        assert_eq!(
            eval_with(r#""abc" < "abd""#, &s, &obj).unwrap(),
            Value::Bool(true)
        );
        assert!(eval_with(r#""a" < 3"#, &s, &obj).is_err());
    }

    #[test]
    fn params_resolve_through_dollar() {
        let (s, id) = schema_with_item();
        let obj = s.new_object(id).unwrap();
        let e = parse_expr("quantity < $threshold").unwrap();
        let params: HashMap<String, Value> = [("threshold".to_string(), Value::Int(200))].into();
        let got = EvalCtx::new(&s)
            .with_this(&obj)
            .with_params(&params)
            .eval(&e)
            .unwrap();
        assert_eq!(got, Value::Bool(true));
        // Missing param is an error.
        assert!(EvalCtx::new(&s).with_this(&obj).eval(&e).is_err());
    }

    #[test]
    fn vars_shadow_fields() {
        let (s, id) = schema_with_item();
        let mut obj = s.new_object(id).unwrap();
        obj.fields[1] = Value::Int(1);
        let vars: HashMap<String, Value> = [("quantity".to_string(), Value::Int(999))].into();
        let e = parse_expr("quantity").unwrap();
        let got = EvalCtx::new(&s)
            .with_this(&obj)
            .with_vars(&vars)
            .eval(&e)
            .unwrap();
        assert_eq!(got, Value::Int(999));
    }

    #[test]
    fn methods_dispatch_with_args() {
        let (mut s, id) = schema_with_item();
        s.register_method(id, "value", |o, args| {
            let qty = o.fields[1].as_int()?;
            let scale = args.first().map(|v| v.as_int()).transpose()?.unwrap_or(1);
            Ok(Value::Int(qty * scale))
        });
        let obj = s.new_object(id).unwrap();
        assert_eq!(eval_with("value()", &s, &obj).unwrap(), Value::Int(100));
        assert_eq!(eval_with("value(3)", &s, &obj).unwrap(), Value::Int(300));
        assert_eq!(
            eval_with("value(2) > 150", &s, &obj).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn membership_in_sets_and_arrays() {
        let (s, id) = schema_with_item();
        let obj = s.new_object(id).unwrap();
        let vars: HashMap<String, Value> = [
            (
                "supplies".to_string(),
                Value::Set(crate::value::SetValue::from_iter([
                    Value::Str("dram".into()),
                    Value::Str("cpu".into()),
                ])),
            ),
            (
                "arr".to_string(),
                Value::Array(vec![Value::Int(1), Value::Int(2)]),
            ),
        ]
        .into();
        let ctx = EvalCtx::new(&s).with_this(&obj).with_vars(&vars);
        assert_eq!(
            ctx.eval(&parse_expr("'dram' in supplies").unwrap())
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            ctx.eval(&parse_expr("3 in arr").unwrap()).unwrap(),
            Value::Bool(false)
        );
        assert!(ctx.eval(&parse_expr("1 in quantity").unwrap()).is_err());
    }

    #[test]
    fn null_behaviour() {
        let (s, id) = schema_with_item();
        let obj = s.new_object(id).unwrap();
        assert_eq!(
            eval_with("null == null", &s, &obj).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_with("name == null", &s, &obj).unwrap(),
            Value::Bool(true),
            "unset string field is null"
        );
        assert!(eval_with("null < 3", &s, &obj).is_err());
    }

    #[test]
    fn deref_without_resolver_fails_cleanly() {
        let (s, id) = schema_with_item();
        let mut obj = s.new_object(id).unwrap();
        obj.fields[0] = Value::Ref(crate::oid::Oid {
            cluster: 1,
            rid: ode_storage::RecordId { page: 1, slot: 0 },
        });
        let err = eval_with("name.quantity", &s, &obj).unwrap_err();
        assert!(matches!(err, ModelError::Eval(_)), "{err}");
    }

    #[test]
    fn overflow_is_caught() {
        let (s, id) = schema_with_item();
        let obj = s.new_object(id).unwrap();
        let big = i64::MAX;
        let src = format!("{big} + 1");
        assert!(matches!(
            eval_with(&src, &s, &obj),
            Err(ModelError::Eval(_))
        ));
    }
}
