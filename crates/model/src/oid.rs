//! Object identity.
//!
//! §2 of the paper: *"A database is a collection of persistent objects,
//! each identified by a unique identifier, called the object identifier
//! (id) that is its identity. We shall also refer to this object id as a
//! pointer to a persistent object."*
//!
//! An [`Oid`] names an object for its whole lifetime: it is the cluster
//! (type-extent) heap id plus the stable record id of the object's anchor
//! record. Dereferencing an `Oid` always yields the object's *current*
//! version — it is the paper's **generic reference** (§4). A
//! [`VersionRef`] pins a particular version: the **specific reference**.

use ode_storage::RecordId;

/// Version numbers are dense per object, starting at 0.
pub type VersionNo = u32;

/// The unique identity of a persistent object (a *generic* reference: it
/// denotes the current version, however many `newversion` calls happen).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid {
    /// The cluster (heap) holding the object — clusters are type extents,
    /// so this also determines the object's (base) cluster.
    pub cluster: u32,
    /// The object's anchor record within the cluster heap.
    pub rid: RecordId,
}

impl Oid {
    /// Pack into 10 bytes for embedding in object payloads.
    pub fn to_bytes(self) -> [u8; 10] {
        let mut out = [0u8; 10];
        out[..4].copy_from_slice(&self.cluster.to_le_bytes());
        out[4..].copy_from_slice(&self.rid.to_bytes());
        out
    }

    /// Unpack from 10 bytes.
    pub fn from_bytes(b: &[u8]) -> Option<Oid> {
        if b.len() < 10 {
            return None;
        }
        Some(Oid {
            cluster: u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
            rid: RecordId::from_bytes(&b[4..10])?,
        })
    }
}

impl std::fmt::Display for Oid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.cluster, self.rid)
    }
}

/// A *specific* reference (§4): one fixed version of one object. Unlike an
/// [`Oid`], it does not track the object as new versions are created.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VersionRef {
    /// The object.
    pub oid: Oid,
    /// The pinned version.
    pub version: VersionNo,
}

impl VersionRef {
    /// Pack into 14 bytes.
    pub fn to_bytes(self) -> [u8; 14] {
        let mut out = [0u8; 14];
        out[..10].copy_from_slice(&self.oid.to_bytes());
        out[10..].copy_from_slice(&self.version.to_le_bytes());
        out
    }

    /// Unpack from 14 bytes.
    pub fn from_bytes(b: &[u8]) -> Option<VersionRef> {
        if b.len() < 14 {
            return None;
        }
        Some(VersionRef {
            oid: Oid::from_bytes(&b[..10])?,
            version: u32::from_le_bytes([b[10], b[11], b[12], b[13]]),
        })
    }
}

impl std::fmt::Display for VersionRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@v{}", self.oid, self.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_oid() -> Oid {
        Oid {
            cluster: 42,
            rid: RecordId { page: 7, slot: 3 },
        }
    }

    #[test]
    fn oid_byte_roundtrip() {
        let oid = sample_oid();
        assert_eq!(Oid::from_bytes(&oid.to_bytes()), Some(oid));
        assert_eq!(Oid::from_bytes(&[0; 5]), None);
    }

    #[test]
    fn version_ref_byte_roundtrip() {
        let vref = VersionRef {
            oid: sample_oid(),
            version: 9,
        };
        assert_eq!(VersionRef::from_bytes(&vref.to_bytes()), Some(vref));
        assert_eq!(VersionRef::from_bytes(&[0; 13]), None);
    }

    #[test]
    fn display_is_readable() {
        let vref = VersionRef {
            oid: sample_oid(),
            version: 2,
        };
        assert_eq!(vref.to_string(), "42:7.3@v2");
    }
}
