//! # ode-model
//!
//! The O++ data model from Agrawal & Gehani's SIGMOD 1989 Ode paper,
//! independent of any storage engine:
//!
//! * [`oid`] — object identity: "a database is a collection of persistent
//!   objects, each identified by a unique identifier" (§2), plus version
//!   references (§4),
//! * [`value`] — runtime values, including sets (§2.6) and object
//!   references, with a total order so values can key indexes and drive
//!   `by` clauses,
//! * [`class`] / [`schema`] — class definitions with data encapsulation
//!   and *multiple inheritance* (§1), C3-linearized into a flat field
//!   layout with shared diamond bases; constraints (§5) and trigger
//!   declarations (§6) attach to classes,
//! * [`expr`] / [`parser`] / [`eval`] — the expression language standing in
//!   for O++'s embedded C++ expressions: it powers `suchthat` and `by`
//!   clauses (§3.1), constraint bodies (§5), and trigger conditions (§6),
//! * [`encode`] — the binary catalog/object codec used by the engine.
//!
//! The engine built on top lives in `ode-core`.

pub mod class;
pub mod ddl;
pub mod encode;
pub mod error;
pub mod eval;
pub mod expr;
pub mod oid;
pub mod parser;
pub mod range;
pub mod schema;
pub mod value;

pub use class::{ClassBuilder, ClassDef, ClassId, FieldDef, TriggerAction, TriggerDecl};
pub use ddl::parse_classes;
pub use error::{ModelError, Result};
pub use eval::{EvalCtx, Resolver};
pub use expr::{BinOp, Expr, UnOp};
pub use oid::{Oid, VersionNo, VersionRef};
pub use parser::parse_expr;
pub use range::{extract_field_ranges, extract_qualified_ranges, FieldRange, ValueRange};
pub use schema::Schema;
pub use value::{ObjState, SetValue, Type, Value};
