//! Binary codec for values, object states, and the schema catalog.
//!
//! The engine stores object records and the class catalog through this
//! module. The format is deliberately hand-rolled (a database owns its disk
//! format): little-endian, length-prefixed, tag-per-variant.
//!
//! Schema persistence round-trips through [`ClassBuilder`]s: the catalog
//! stores *declarations* (including constraint/trigger source text), and
//! decoding re-runs [`Schema::define`], so linearizations and layouts are
//! always recomputed by the same checked code path that built them.

use crate::class::{ClassBuilder, ClassDef, TriggerAction};
use crate::error::{ModelError, Result};
use crate::oid::{Oid, VersionRef};
use crate::schema::Schema;
use crate::value::{ObjState, SetValue, Type, Value};
use crate::ClassId;

/// Incremented when the record encoding changes shape.
pub const CODEC_VERSION: u8 = 1;

// ---------------------------------------------------------------- writer

/// Append-only byte writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Take the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Append raw pre-encoded bytes (length must be framed by the caller).
    pub fn append_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

// ---------------------------------------------------------------- reader

/// Sequential byte reader with bounds checking.
pub struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, at: 0 }
    }

    /// Have all bytes been consumed?
    pub fn at_end(&self) -> bool {
        self.at == self.buf.len()
    }

    /// Consume exactly `n` raw bytes (caller framed them).
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        self.need(n)
    }

    fn need(&mut self, n: usize) -> Result<&'a [u8]> {
        let s = self
            .buf
            .get(self.at..self.at + n)
            .ok_or_else(|| ModelError::Decode("unexpected end of record".into()))?;
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.need(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.need(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.need(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.need(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool> {
        Ok(self.u8()? != 0)
    }

    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let s = self.need(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| ModelError::Decode("invalid utf-8 string".into()))
    }
}

// ---------------------------------------------------------------- values

const V_NULL: u8 = 0;
const V_BOOL: u8 = 1;
const V_INT: u8 = 2;
const V_FLOAT: u8 = 3;
const V_STR: u8 = 4;
const V_REF: u8 = 5;
const V_VREF: u8 = 6;
const V_ARRAY: u8 = 7;
const V_SET: u8 = 8;

/// Encode one value into the writer.
pub fn write_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Null => w.u8(V_NULL),
        Value::Bool(b) => {
            w.u8(V_BOOL);
            w.bool(*b);
        }
        Value::Int(i) => {
            w.u8(V_INT);
            w.i64(*i);
        }
        Value::Float(x) => {
            w.u8(V_FLOAT);
            w.f64(*x);
        }
        Value::Str(s) => {
            w.u8(V_STR);
            w.str(s);
        }
        Value::Ref(oid) => {
            w.u8(V_REF);
            w.bytes(&oid.to_bytes());
        }
        Value::VRef(vr) => {
            w.u8(V_VREF);
            w.bytes(&vr.to_bytes());
        }
        Value::Array(items) => {
            w.u8(V_ARRAY);
            w.u32(items.len() as u32);
            for it in items {
                write_value(w, it);
            }
        }
        Value::Set(s) => {
            w.u8(V_SET);
            w.u32(s.len() as u32);
            for it in s.iter() {
                write_value(w, it);
            }
        }
    }
}

/// Decode one value.
pub fn read_value(r: &mut Reader) -> Result<Value> {
    Ok(match r.u8()? {
        V_NULL => Value::Null,
        V_BOOL => Value::Bool(r.bool()?),
        V_INT => Value::Int(r.i64()?),
        V_FLOAT => Value::Float(r.f64()?),
        V_STR => Value::Str(r.str()?),
        V_REF => Value::Ref(
            Oid::from_bytes(r.need(10)?).ok_or_else(|| ModelError::Decode("bad oid".into()))?,
        ),
        V_VREF => Value::VRef(
            VersionRef::from_bytes(r.need(14)?)
                .ok_or_else(|| ModelError::Decode("bad version ref".into()))?,
        ),
        V_ARRAY => {
            let n = r.u32()? as usize;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(read_value(r)?);
            }
            Value::Array(items)
        }
        V_SET => {
            let n = r.u32()? as usize;
            let mut s = SetValue::new();
            for _ in 0..n {
                s.insert(read_value(r)?);
            }
            Value::Set(s)
        }
        other => return Err(ModelError::Decode(format!("unknown value tag {other}"))),
    })
}

/// Encode a value to a standalone byte vector.
pub fn encode_value(v: &Value) -> Vec<u8> {
    let mut w = Writer::new();
    write_value(&mut w, v);
    w.finish()
}

/// Decode a standalone value.
pub fn decode_value(bytes: &[u8]) -> Result<Value> {
    let mut r = Reader::new(bytes);
    let v = read_value(&mut r)?;
    if !r.at_end() {
        return Err(ModelError::Decode("trailing bytes after value".into()));
    }
    Ok(v)
}

// ---------------------------------------------------------------- objects

/// Encode an object's state (class + field values).
pub fn encode_object(obj: &ObjState) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(CODEC_VERSION);
    w.u32(obj.class.0);
    w.u32(obj.fields.len() as u32);
    for f in &obj.fields {
        write_value(&mut w, f);
    }
    w.finish()
}

/// Decode an object's state.
pub fn decode_object(bytes: &[u8]) -> Result<ObjState> {
    let mut r = Reader::new(bytes);
    let ver = r.u8()?;
    if ver != CODEC_VERSION {
        return Err(ModelError::Decode(format!(
            "object codec version {ver} not supported"
        )));
    }
    let class = ClassId(r.u32()?);
    let n = r.u32()? as usize;
    let mut fields = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        fields.push(read_value(&mut r)?);
    }
    if !r.at_end() {
        return Err(ModelError::Decode("trailing bytes after object".into()));
    }
    Ok(ObjState { class, fields })
}

// ---------------------------------------------------------------- types

const T_INT: u8 = 0;
const T_FLOAT: u8 = 1;
const T_BOOL: u8 = 2;
const T_STR: u8 = 3;
const T_REF: u8 = 4;
const T_VREF: u8 = 5;
const T_ARRAY: u8 = 6;
const T_SET: u8 = 7;
const T_ANY: u8 = 8;

fn write_type(w: &mut Writer, ty: &Type) {
    match ty {
        Type::Int => w.u8(T_INT),
        Type::Float => w.u8(T_FLOAT),
        Type::Bool => w.u8(T_BOOL),
        Type::Str => w.u8(T_STR),
        Type::Ref(c) => {
            w.u8(T_REF);
            w.str(c);
        }
        Type::VRef(c) => {
            w.u8(T_VREF);
            w.str(c);
        }
        Type::Array(e) => {
            w.u8(T_ARRAY);
            write_type(w, e);
        }
        Type::Set(e) => {
            w.u8(T_SET);
            write_type(w, e);
        }
        Type::Any => w.u8(T_ANY),
    }
}

fn read_type(r: &mut Reader) -> Result<Type> {
    Ok(match r.u8()? {
        T_INT => Type::Int,
        T_FLOAT => Type::Float,
        T_BOOL => Type::Bool,
        T_STR => Type::Str,
        T_REF => Type::Ref(r.str()?),
        T_VREF => Type::VRef(r.str()?),
        T_ARRAY => Type::Array(Box::new(read_type(r)?)),
        T_SET => Type::Set(Box::new(read_type(r)?)),
        T_ANY => Type::Any,
        other => return Err(ModelError::Decode(format!("unknown type tag {other}"))),
    })
}

// ---------------------------------------------------------------- catalog

const A_ASSIGN: u8 = 0;
const A_CALLBACK: u8 = 1;

/// Encode one class *declaration* (what `Schema::define` consumed). The
/// caller provides the schema to map base ids back to names.
pub fn encode_class(schema: &Schema, def: &ClassDef) -> Result<Vec<u8>> {
    let mut w = Writer::new();
    w.u8(CODEC_VERSION);
    w.str(&def.name);
    w.u32(def.bases.len() as u32);
    for b in &def.bases {
        w.str(&schema.class(*b)?.name);
    }
    w.u32(def.own_fields.len() as u32);
    for f in &def.own_fields {
        w.str(&f.name);
        write_type(&mut w, &f.ty);
        match &f.default {
            Some(v) => {
                w.bool(true);
                write_value(&mut w, v);
            }
            None => w.bool(false),
        }
    }
    w.u32(def.constraints.len() as u32);
    for c in &def.constraints {
        w.str(&c.name);
        w.str(&c.src);
    }
    w.u32(def.triggers.len() as u32);
    for t in &def.triggers {
        w.str(&t.name);
        w.u32(t.params.len() as u32);
        for p in &t.params {
            w.str(p);
        }
        w.bool(t.perpetual);
        w.str(&t.condition_src);
        w.u32(t.actions.len() as u32);
        for a in &t.actions {
            match a {
                TriggerAction::Assign { field, src, .. } => {
                    w.u8(A_ASSIGN);
                    w.str(field);
                    w.str(src);
                }
                TriggerAction::Callback { name } => {
                    w.u8(A_CALLBACK);
                    w.str(name);
                }
            }
        }
    }
    Ok(w.finish())
}

/// Decode a class declaration back into a builder (re-`define` it to get a
/// checked [`ClassDef`]).
pub fn decode_class(bytes: &[u8]) -> Result<ClassBuilder> {
    let mut r = Reader::new(bytes);
    let ver = r.u8()?;
    if ver != CODEC_VERSION {
        return Err(ModelError::Decode(format!(
            "catalog codec version {ver} not supported"
        )));
    }
    let name = r.str()?;
    let mut b = ClassBuilder::new(name);
    for _ in 0..r.u32()? {
        b = b.base(r.str()?);
    }
    for _ in 0..r.u32()? {
        let fname = r.str()?;
        let ty = read_type(&mut r)?;
        let has_default = r.bool()?;
        b = if has_default {
            let v = read_value(&mut r)?;
            b.field_default(fname, ty, v)
        } else {
            b.field(fname, ty)
        };
    }
    for _ in 0..r.u32()? {
        let cname = r.str()?;
        let src = r.str()?;
        b = b.constraint_named(cname, src);
    }
    for _ in 0..r.u32()? {
        let tname = r.str()?;
        let mut params = Vec::new();
        for _ in 0..r.u32()? {
            params.push(r.str()?);
        }
        let param_refs: Vec<&str> = params.iter().map(|s| s.as_str()).collect();
        let perpetual = r.bool()?;
        let condition = r.str()?;
        b = b.trigger(tname, &param_refs, perpetual, condition);
        for _ in 0..r.u32()? {
            match r.u8()? {
                A_ASSIGN => {
                    let field = r.str()?;
                    let src = r.str()?;
                    b = b.action_assign(field, src);
                }
                A_CALLBACK => {
                    b = b.action_callback(r.str()?);
                }
                other => return Err(ModelError::Decode(format!("unknown action tag {other}"))),
            }
        }
    }
    if !r.at_end() {
        return Err(ModelError::Decode("trailing bytes after class".into()));
    }
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassBuilder;
    use ode_storage::RecordId;

    fn sample_values() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(2.5),
            Value::Float(f64::NEG_INFINITY),
            Value::Str("512 dram".into()),
            Value::Ref(Oid {
                cluster: 3,
                rid: RecordId { page: 9, slot: 1 },
            }),
            Value::VRef(VersionRef {
                oid: Oid {
                    cluster: 3,
                    rid: RecordId { page: 9, slot: 1 },
                },
                version: 4,
            }),
            Value::Array(vec![Value::Int(1), Value::Str("two".into())]),
            Value::Set(SetValue::from_iter([Value::Int(5), Value::Int(3)])),
        ]
    }

    #[test]
    fn value_roundtrip() {
        for v in sample_values() {
            let bytes = encode_value(&v);
            assert_eq!(decode_value(&bytes).unwrap(), v, "{v}");
        }
    }

    #[test]
    fn nested_containers_roundtrip() {
        let v = Value::Array(vec![
            Value::Set(SetValue::from_iter([Value::Array(vec![Value::Int(1)])])),
            Value::Null,
        ]);
        assert_eq!(decode_value(&encode_value(&v)).unwrap(), v);
    }

    #[test]
    fn set_order_survives_roundtrip() {
        let s = SetValue::from_iter([Value::Int(3), Value::Int(1), Value::Int(2)]);
        let v = Value::Set(s);
        let back = decode_value(&encode_value(&v)).unwrap();
        let Value::Set(bs) = back else { panic!() };
        let order: Vec<i64> = bs.iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(order, vec![3, 1, 2]);
    }

    #[test]
    fn object_roundtrip() {
        let obj = ObjState {
            class: ClassId(7),
            fields: sample_values(),
        };
        let back = decode_object(&encode_object(&obj)).unwrap();
        assert_eq!(back, obj);
    }

    #[test]
    fn corrupt_input_is_rejected_not_panicking() {
        assert!(decode_value(&[]).is_err());
        assert!(decode_value(&[99]).is_err());
        assert!(decode_value(&[V_STR, 10, 0, 0, 0, b'x']).is_err());
        assert!(decode_object(&[CODEC_VERSION, 1, 0]).is_err());
        let mut good = encode_value(&Value::Int(1));
        good.push(0xFF);
        assert!(decode_value(&good).is_err(), "trailing bytes rejected");
    }

    #[test]
    fn class_declaration_roundtrip() {
        let mut schema = Schema::new();
        schema
            .define(ClassBuilder::new("person").field("name", Type::Str))
            .unwrap();
        let id = schema
            .define(
                ClassBuilder::new("stockitem")
                    .base("person")
                    .field("supplier", Type::Str)
                    .field_default("quantity", Type::Int, 0)
                    .field_default("price", Type::Float, 1.0)
                    .field("tags", Type::Set(Box::new(Type::Str)))
                    .constraint_named("non_negative", "quantity >= 0")
                    .trigger("reorder", &["amount"], true, "quantity < $amount")
                    .action_assign("quantity", "quantity + 100")
                    .action_callback("notify_purchasing"),
            )
            .unwrap();
        let def = schema.class(id).unwrap();
        let bytes = encode_class(&schema, def).unwrap();

        // Re-define into a fresh schema.
        let mut schema2 = Schema::new();
        schema2
            .define(ClassBuilder::new("person").field("name", Type::Str))
            .unwrap();
        let id2 = schema2.define(decode_class(&bytes).unwrap()).unwrap();
        let def2 = schema2.class(id2).unwrap();
        assert_eq!(def2.name, "stockitem");
        assert_eq!(def2.own_fields.len(), 4);
        assert_eq!(def2.constraints.len(), 1);
        assert_eq!(def2.constraints[0].name, "non_negative");
        assert_eq!(def2.triggers.len(), 1);
        let t = &def2.triggers[0];
        assert_eq!(t.params, vec!["amount"]);
        assert!(t.perpetual);
        assert_eq!(t.actions.len(), 2);
        // Layout identical to the original.
        let names: Vec<&str> = def2.layout.iter().map(|f| f.name.as_str()).collect();
        let orig: Vec<&str> = def.layout.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, orig);
    }
}
