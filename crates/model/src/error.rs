//! Error type for the data-model layer.

use std::fmt;

/// Errors raised by schema definition, expression parsing, evaluation, and
/// the object codec.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Expression source text could not be parsed.
    Parse {
        /// What went wrong.
        message: String,
        /// Byte offset into the source where it went wrong.
        at: usize,
    },
    /// Static or dynamic type mismatch.
    Type(String),
    /// A runtime evaluation failure (division by zero, bad deref, …).
    Eval(String),
    /// Reference to an unknown class.
    UnknownClass(String),
    /// Reference to an unknown field.
    UnknownField { class: String, field: String },
    /// Reference to an unknown method.
    UnknownMethod { class: String, method: String },
    /// Reference to an unbound variable (loop variable / trigger argument).
    UnknownVar(String),
    /// Multiple-inheritance conflict (ambiguous field, bad linearization).
    Inheritance(String),
    /// A malformed binary image (catalog or object record).
    Decode(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Parse { message, at } => {
                write!(f, "parse error at byte {at}: {message}")
            }
            ModelError::Type(msg) => write!(f, "type error: {msg}"),
            ModelError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            ModelError::UnknownClass(name) => write!(f, "unknown class `{name}`"),
            ModelError::UnknownField { class, field } => {
                write!(f, "class `{class}` has no field `{field}`")
            }
            ModelError::UnknownMethod { class, method } => {
                write!(f, "class `{class}` has no method `{method}`")
            }
            ModelError::UnknownVar(name) => write!(f, "unbound variable `{name}`"),
            ModelError::Inheritance(msg) => write!(f, "inheritance error: {msg}"),
            ModelError::Decode(msg) => write!(f, "decode error: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Result alias for the crate.
pub type Result<T> = std::result::Result<T, ModelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            ModelError::UnknownClass("ghost".into()).to_string(),
            "unknown class `ghost`"
        );
        assert_eq!(
            ModelError::UnknownField {
                class: "person".into(),
                field: "wings".into()
            }
            .to_string(),
            "class `person` has no field `wings`"
        );
        let p = ModelError::Parse {
            message: "unexpected `)`".into(),
            at: 7,
        };
        assert!(p.to_string().contains("byte 7"));
    }
}
