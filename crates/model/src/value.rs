//! Runtime values, field types, and object state.
//!
//! Values carry everything an O++ object member can hold: primitives,
//! strings, object references (generic and specific, §4), arrays, and sets
//! (§2.6). The total order on [`Value`] (variant rank first, then payload;
//! floats via `total_cmp`) is what lets values key B-tree indexes and sort
//! `by` clauses deterministically.

use std::cmp::Ordering;

use crate::class::ClassId;
use crate::error::{ModelError, Result};
use crate::oid::{Oid, VersionRef};

/// Declared type of a field (O++ member declarations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// `int` — 64-bit signed.
    Int,
    /// `double` — 64-bit float.
    Float,
    /// Truth value.
    Bool,
    /// `char*` / string.
    Str,
    /// Pointer to a persistent object of (a subclass of) the named class —
    /// a generic reference.
    Ref(String),
    /// A specific (pinned-version) reference to the named class.
    VRef(String),
    /// Fixed-element-type array.
    Array(Box<Type>),
    /// A set of elements (§2.6 `set of`).
    Set(Box<Type>),
    /// Escape hatch: any value (used sparingly, e.g. generic containers).
    Any,
}

impl Type {
    /// Does `value` inhabit this type, structurally? Reference *class*
    /// conformance needs the cluster→class map and is checked by the
    /// engine; here `Ref`/`VRef` only require the right value shape.
    pub fn admits(&self, value: &Value) -> bool {
        match (self, value) {
            (_, Value::Null) => true, // null pointer / absent value
            (Type::Int, Value::Int(_)) => true,
            (Type::Float, Value::Float(_)) => true,
            // Ints coerce into float fields, as in C++.
            (Type::Float, Value::Int(_)) => true,
            (Type::Bool, Value::Bool(_)) => true,
            (Type::Str, Value::Str(_)) => true,
            (Type::Ref(_), Value::Ref(_)) => true,
            (Type::VRef(_), Value::VRef(_)) => true,
            (Type::Array(elem), Value::Array(items)) => items.iter().all(|v| elem.admits(v)),
            (Type::Set(elem), Value::Set(s)) => s.iter().all(|v| elem.admits(v)),
            (Type::Any, _) => true,
            _ => false,
        }
    }

    /// Human-readable type name for error messages.
    pub fn name(&self) -> String {
        match self {
            Type::Int => "int".into(),
            Type::Float => "double".into(),
            Type::Bool => "bool".into(),
            Type::Str => "string".into(),
            Type::Ref(c) => format!("persistent {c}*"),
            Type::VRef(c) => format!("version of {c}"),
            Type::Array(e) => format!("array of {}", e.name()),
            Type::Set(e) => format!("set of {}", e.name()),
            Type::Any => "any".into(),
        }
    }
}

/// A set value (§2.6). Insertion order is preserved — the fixpoint
/// iteration of §3.2 visits elements *added during the iteration*, which
/// requires appended elements to come after the cursor.
#[derive(Debug, Clone, Default)]
pub struct SetValue {
    items: Vec<Value>,
}

impl SetValue {
    /// Empty set.
    pub fn new() -> SetValue {
        SetValue::default()
    }

    /// Build from an iterator, dropping duplicates (first occurrence wins).
    /// (Also available through the `FromIterator` impl / `collect()`.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(items: impl IntoIterator<Item = Value>) -> SetValue {
        let mut s = SetValue::new();
        for v in items {
            s.insert(v);
        }
        s
    }

    /// Insert; returns true if the element was new.
    pub fn insert(&mut self, v: Value) -> bool {
        if self.items.contains(&v) {
            false
        } else {
            self.items.push(v);
            true
        }
    }

    /// Remove; returns true if the element was present.
    pub fn remove(&mut self, v: &Value) -> bool {
        match self.items.iter().position(|x| x == v) {
            Some(i) => {
                self.items.remove(i);
                true
            }
            None => false,
        }
    }

    /// Membership test.
    pub fn contains(&self, v: &Value) -> bool {
        self.items.contains(v)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Elements in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.items.iter()
    }

    /// Element by insertion position (used by the fixpoint cursor).
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.items.get(i)
    }

    /// Set union (self ∪ other), preserving self's order first.
    pub fn union(&self, other: &SetValue) -> SetValue {
        let mut out = self.clone();
        for v in other.iter() {
            out.insert(v.clone());
        }
        out
    }

    /// Set intersection.
    pub fn intersection(&self, other: &SetValue) -> SetValue {
        SetValue {
            items: self
                .items
                .iter()
                .filter(|v| other.contains(v))
                .cloned()
                .collect(),
        }
    }

    /// Set difference (self ∖ other).
    pub fn difference(&self, other: &SetValue) -> SetValue {
        SetValue {
            items: self
                .items
                .iter()
                .filter(|v| !other.contains(v))
                .cloned()
                .collect(),
        }
    }

    fn sorted(&self) -> Vec<&Value> {
        let mut v: Vec<&Value> = self.items.iter().collect();
        v.sort();
        v
    }
}

impl PartialEq for SetValue {
    /// Set equality ignores insertion order.
    fn eq(&self, other: &Self) -> bool {
        self.items.len() == other.items.len() && self.sorted() == other.sorted()
    }
}

impl Eq for SetValue {}

impl PartialOrd for SetValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SetValue {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sorted().cmp(&other.sorted())
    }
}

impl FromIterator<Value> for SetValue {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        SetValue::from_iter(iter)
    }
}

/// A runtime value.
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// Null pointer / absent.
    #[default]
    Null,
    /// Truth value.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String (O++ `char*` members and `'c'` literals).
    Str(String),
    /// Generic reference to a persistent object (tracks current version).
    Ref(Oid),
    /// Specific reference to one version of a persistent object.
    VRef(VersionRef),
    /// Array value.
    Array(Vec<Value>),
    /// Set value (§2.6).
    Set(SetValue),
}

impl Value {
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2, // numerics compare cross-type
            Value::Str(_) => 4,
            Value::Ref(_) => 5,
            Value::VRef(_) => 6,
            Value::Array(_) => 7,
            Value::Set(_) => 8,
        }
    }

    /// Is this the null value?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as a boolean (for `suchthat`, constraints, triggers).
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(ModelError::Type(format!(
                "expected a boolean condition, got {other}"
            ))),
        }
    }

    /// Interpret as an integer.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(ModelError::Type(format!("expected an int, got {other}"))),
        }
    }

    /// Interpret as a float, coercing ints.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            other => Err(ModelError::Type(format!("expected a number, got {other}"))),
        }
    }

    /// Interpret as a string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(ModelError::Type(format!("expected a string, got {other}"))),
        }
    }

    /// Interpret as a generic reference.
    pub fn as_ref_oid(&self) -> Result<Oid> {
        match self {
            Value::Ref(oid) => Ok(*oid),
            other => Err(ModelError::Type(format!(
                "expected an object reference, got {other}"
            ))),
        }
    }

    /// Interpret as a set (mutable access goes through the engine).
    pub fn as_set(&self) -> Result<&SetValue> {
        match self {
            Value::Set(s) => Ok(s),
            other => Err(ModelError::Type(format!("expected a set, got {other}"))),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            // Cross-numeric comparison, so `by (salary)` works over mixed
            // int/float data.
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Ref(a), Ref(b)) => a.cmp(b),
            (VRef(a), VRef(b)) => a.cmp(b),
            (Array(a), Array(b)) => a.cmp(b),
            (Set(a), Set(b)) => a.cmp(b),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash must agree with Eq: numerics hash via their f64 bit image
        // when fractional, via i64 when integral.
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(x) => {
                2u8.hash(state);
                x.to_bits().hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
            Value::Ref(o) => {
                5u8.hash(state);
                o.hash(state);
            }
            Value::VRef(v) => {
                6u8.hash(state);
                v.hash(state);
            }
            Value::Array(items) => {
                7u8.hash(state);
                for v in items {
                    v.hash(state);
                }
            }
            Value::Set(s) => {
                8u8.hash(state);
                for v in s.sorted() {
                    v.hash(state);
                }
            }
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Ref(oid) => write!(f, "&{oid}"),
            Value::VRef(v) => write!(f, "&{v}"),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Set(s) => {
                write!(f, "{{")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Oid> for Value {
    fn from(v: Oid) -> Self {
        Value::Ref(v)
    }
}

impl From<VersionRef> for Value {
    fn from(v: VersionRef) -> Self {
        Value::VRef(v)
    }
}

/// The in-memory state of one object: its dynamic class plus one value per
/// slot of the class's (linearized) field layout.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjState {
    /// The object's most-derived class.
    pub class: ClassId,
    /// One value per layout slot, in layout order.
    pub fields: Vec<Value>,
}

impl ObjState {
    /// New state with every field `Null` (defaults are applied by the
    /// schema when constructing through it).
    pub fn new(class: ClassId, field_count: usize) -> ObjState {
        ObjState {
            class,
            fields: vec![Value::Null; field_count],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_storage::RecordId;

    fn oid(n: u32) -> Oid {
        Oid {
            cluster: 1,
            rid: RecordId { page: n, slot: 0 },
        }
    }

    #[test]
    fn total_order_is_consistent() {
        let mut vals = [
            Value::Str("b".into()),
            Value::Int(2),
            Value::Null,
            Value::Float(1.5),
            Value::Bool(true),
            Value::Str("a".into()),
            Value::Int(1),
        ];
        vals.sort();
        // Nulls first, then bools, then numerics in numeric order, strings last.
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Int(1));
        assert_eq!(vals[3], Value::Float(1.5));
        assert_eq!(vals[4], Value::Int(2));
        assert_eq!(vals[5], Value::Str("a".into()));
    }

    #[test]
    fn cross_numeric_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
        assert!(Value::Int(3) < Value::Float(3.5));
        assert!(Value::Float(2.5) < Value::Int(3));
    }

    #[test]
    fn nan_has_a_stable_place() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Float(f64::INFINITY) < nan);
    }

    #[test]
    fn hash_agrees_with_eq_for_cross_numerics() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(7)), h(&Value::Float(7.0)));
    }

    #[test]
    fn set_insert_dedups_and_preserves_order() {
        let mut s = SetValue::new();
        assert!(s.insert(Value::Int(3)));
        assert!(s.insert(Value::Int(1)));
        assert!(!s.insert(Value::Int(3)));
        assert!(s.insert(Value::Int(2)));
        let order: Vec<i64> = s.iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(order, vec![3, 1, 2], "insertion order preserved");
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn set_equality_ignores_order() {
        let a = SetValue::from_iter([Value::Int(1), Value::Int(2)]);
        let b = SetValue::from_iter([Value::Int(2), Value::Int(1)]);
        assert_eq!(a, b);
        let c = SetValue::from_iter([Value::Int(1)]);
        assert_ne!(a, c);
    }

    #[test]
    fn set_algebra() {
        let a = SetValue::from_iter([Value::Int(1), Value::Int(2), Value::Int(3)]);
        let b = SetValue::from_iter([Value::Int(3), Value::Int(4)]);
        assert_eq!(a.union(&b), SetValue::from_iter((1..=4).map(Value::Int)));
        assert_eq!(a.intersection(&b), SetValue::from_iter([Value::Int(3)]));
        assert_eq!(
            a.difference(&b),
            SetValue::from_iter([Value::Int(1), Value::Int(2)])
        );
    }

    #[test]
    fn set_remove() {
        let mut s = SetValue::from_iter([Value::Int(1), Value::Int(2)]);
        assert!(s.remove(&Value::Int(1)));
        assert!(!s.remove(&Value::Int(1)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn type_admits() {
        assert!(Type::Int.admits(&Value::Int(4)));
        assert!(!Type::Int.admits(&Value::Str("4".into())));
        assert!(Type::Float.admits(&Value::Int(4)), "int coerces to double");
        assert!(Type::Ref("person".into()).admits(&Value::Ref(oid(1))));
        assert!(Type::Str.admits(&Value::Null), "null admitted everywhere");
        let set_ty = Type::Set(Box::new(Type::Int));
        assert!(set_ty.admits(&Value::Set(SetValue::from_iter([Value::Int(1)]))));
        assert!(!set_ty.admits(&Value::Set(SetValue::from_iter([Value::Str("x".into())]))));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Str("hi".into()).to_string(), "\"hi\"");
        assert_eq!(
            Value::Array(vec![Value::Int(1), Value::Int(2)]).to_string(),
            "[1, 2]"
        );
        assert_eq!(
            Value::Set(SetValue::from_iter([Value::Int(1)])).to_string(),
            "{1}"
        );
    }
}
