//! Static value-range extraction: turn a predicate's top-level `&&`
//! conjuncts of the shape `member op literal` into per-field intervals.
//!
//! This is the abstract domain the footprint analyzer (ode-analyze) and
//! the commit validator (ode-core) share: a predicate `P` over a loop
//! variable implies, for every extracted [`FieldRange`] `f ∈ R`, that any
//! object satisfying `P` has `f ∈ R`. The extraction is a sound
//! over-approximation — conjuncts it cannot read (disjunctions, method
//! calls, cross-variable comparisons) simply widen the result toward
//! "whole extent"; it never narrows beyond what the predicate implies.
//!
//! Interval endpoints order by [`Value`]'s total order (`Ord`), which
//! agrees with predicate evaluation on every comparison the evaluator
//! accepts (numeric/numeric and string/string); comparisons the evaluator
//! would reject error at run time, and the engine falls back to
//! whole-extent tracking on any such error.

use crate::expr::{BinOp, Expr, UnOp};
use crate::value::Value;

/// A closed/open/unbounded interval over [`Value`]'s total order.
///
/// `None` endpoints are unbounded. The `bool` in each endpoint is
/// *inclusive*: `lo: Some((5, true))` means `v >= 5`.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueRange {
    /// Greatest lower bound, if any: `(value, inclusive)`.
    pub lo: Option<(Value, bool)>,
    /// Least upper bound, if any: `(value, inclusive)`.
    pub hi: Option<(Value, bool)>,
}

impl ValueRange {
    /// The unbounded interval (every value).
    pub fn full() -> ValueRange {
        ValueRange { lo: None, hi: None }
    }

    /// The single-point interval `[v, v]` (an equality pin).
    pub fn point(v: Value) -> ValueRange {
        ValueRange {
            lo: Some((v.clone(), true)),
            hi: Some((v, true)),
        }
    }

    /// Is the interval unbounded on both sides?
    pub fn is_full(&self) -> bool {
        self.lo.is_none() && self.hi.is_none()
    }

    /// Does the interval contain `v` (under `Value`'s total order)?
    pub fn contains(&self, v: &Value) -> bool {
        if let Some((lo, incl)) = &self.lo {
            match v.cmp(lo) {
                std::cmp::Ordering::Less => return false,
                std::cmp::Ordering::Equal if !incl => return false,
                _ => {}
            }
        }
        if let Some((hi, incl)) = &self.hi {
            match v.cmp(hi) {
                std::cmp::Ordering::Greater => return false,
                std::cmp::Ordering::Equal if !incl => return false,
                _ => {}
            }
        }
        true
    }

    /// Are the two intervals provably disjoint (no value in both)?
    pub fn disjoint(&self, other: &ValueRange) -> bool {
        fn apart(hi: &Option<(Value, bool)>, lo: &Option<(Value, bool)>) -> bool {
            match (hi, lo) {
                (Some((h, h_incl)), Some((l, l_incl))) => match h.cmp(l) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Equal => !(*h_incl && *l_incl),
                    std::cmp::Ordering::Greater => false,
                },
                _ => false,
            }
        }
        apart(&self.hi, &other.lo) || apart(&other.hi, &self.lo)
    }

    /// Do the two intervals possibly share a value?
    pub fn overlaps(&self, other: &ValueRange) -> bool {
        !self.disjoint(other)
    }

    /// Narrow by one comparison conjunct: `member op v` for an ordering
    /// or equality operator. Unknown operators leave the range unchanged.
    fn narrow(&mut self, op: BinOp, v: &Value) {
        match op {
            BinOp::Eq => {
                self.narrow_lo(v, true);
                self.narrow_hi(v, true);
            }
            BinOp::Lt => self.narrow_hi(v, false),
            BinOp::Le => self.narrow_hi(v, true),
            BinOp::Gt => self.narrow_lo(v, false),
            BinOp::Ge => self.narrow_lo(v, true),
            _ => {}
        }
    }

    fn narrow_lo(&mut self, v: &Value, incl: bool) {
        let tighter = match &self.lo {
            Some((cur, cur_incl)) => match v.cmp(cur) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => *cur_incl && !incl,
                std::cmp::Ordering::Less => false,
            },
            None => true,
        };
        if tighter {
            self.lo = Some((v.clone(), incl));
        }
    }

    fn narrow_hi(&mut self, v: &Value, incl: bool) {
        let tighter = match &self.hi {
            Some((cur, cur_incl)) => match v.cmp(cur) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => *cur_incl && !incl,
                std::cmp::Ordering::Greater => false,
            },
            None => true,
        };
        if tighter {
            self.hi = Some((v.clone(), incl));
        }
    }
}

impl std::fmt::Display for ValueRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.lo {
            Some((v, true)) => write!(f, "[{v}")?,
            Some((v, false)) => write!(f, "({v}")?,
            None => write!(f, "(-inf")?,
        }
        write!(f, ", ")?;
        match &self.hi {
            Some((v, true)) => write!(f, "{v}]"),
            Some((v, false)) => write!(f, "{v})"),
            None => write!(f, "+inf)"),
        }
    }
}

/// One field pinned to an interval: the unit of a statement footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldRange {
    /// Field name on the scanned/written class.
    pub field: String,
    /// Values the predicate admits for that field.
    pub range: ValueRange,
}

impl std::fmt::Display for FieldRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} in {}", self.field, self.range)
    }
}

/// A field reference a range conjunct can attach to: a bare identifier
/// (resolved as a field of the current object) or `var.field` where
/// `var` is the loop variable. Returns the field name.
fn member_of<'a>(e: &'a Expr, var: Option<&str>) -> Option<&'a str> {
    match e {
        // A bare identifier that *is* the loop variable names the object,
        // not a field of it.
        Expr::Ident(name) => (Some(name.as_str()) != var).then_some(name.as_str()),
        Expr::Path(base, field) => match base.as_ref() {
            Expr::Ident(v) => (Some(v.as_str()) == var).then_some(field.as_str()),
            _ => None,
        },
        _ => None,
    }
}

/// A literal operand, looking through unary negation of numbers.
fn literal_of(e: &Expr) -> Option<Value> {
    match e {
        Expr::Lit(v) => Some(v.clone()),
        Expr::Unary(UnOp::Neg, inner) => match inner.as_ref() {
            Expr::Lit(Value::Int(i)) => Some(Value::Int(-i)),
            Expr::Lit(Value::Float(x)) => Some(Value::Float(-x)),
            _ => None,
        },
        _ => None,
    }
}

/// Mirror `literal op member` into `member op literal`.
fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// Extract the per-field intervals a predicate implies for objects bound
/// to `var` (or, with `var: None`, for the implicit current object).
///
/// Only top-level `&&` conjuncts of the shape `field op literal` (either
/// orientation) narrow a range; everything else is ignored, keeping the
/// result a sound over-approximation: `P(obj) ⇒ obj.f ∈ R_f` for every
/// returned range. Fields are returned in name order (deterministic).
pub fn extract_field_ranges(pred: &Expr, var: Option<&str>) -> Vec<FieldRange> {
    extract_ranges(pred, var, true)
}

/// Like [`extract_field_ranges`], but only `var.field` references narrow
/// a range — bare identifiers are ignored. Use this for multi-variable
/// joins, where a bare identifier could resolve against any binding.
pub fn extract_qualified_ranges(pred: &Expr, var: &str) -> Vec<FieldRange> {
    extract_ranges(pred, Some(var), false)
}

fn extract_ranges(pred: &Expr, var: Option<&str>, allow_bare: bool) -> Vec<FieldRange> {
    let mut ranges: std::collections::BTreeMap<&str, ValueRange> =
        std::collections::BTreeMap::new();
    fn member<'a>(e: &'a Expr, var: Option<&str>, allow_bare: bool) -> Option<&'a str> {
        match member_of(e, var) {
            Some(f) if allow_bare || matches!(e, Expr::Path(..)) => Some(f),
            _ => None,
        }
    }
    let mut stack = vec![pred];
    while let Some(e) = stack.pop() {
        match e {
            Expr::Binary(BinOp::And, l, r) => {
                stack.push(l);
                stack.push(r);
            }
            Expr::Binary(op, l, r)
                if matches!(
                    op,
                    BinOp::Eq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
                ) =>
            {
                let (field, op, v) =
                    if let (Some(f), Some(v)) = (member(l, var, allow_bare), literal_of(r)) {
                        (f, *op, v)
                    } else if let (Some(v), Some(f)) = (literal_of(l), member(r, var, allow_bare)) {
                        (f, flip(*op), v)
                    } else {
                        continue;
                    };
                ranges
                    .entry(field)
                    .or_insert_with(ValueRange::full)
                    .narrow(op, &v);
            }
            _ => {}
        }
    }
    ranges
        .into_iter()
        .filter(|(_, r)| !r.is_full())
        .map(|(field, range)| FieldRange {
            field: field.to_string(),
            range,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn ranges(src: &str, var: Option<&str>) -> Vec<FieldRange> {
        extract_field_ranges(&parse_expr(src).unwrap(), var)
    }

    #[test]
    fn extracts_bare_and_dotted_members() {
        let r = ranges("k >= 5 && k < 10", None);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].field, "k");
        assert!(r[0].range.contains(&Value::Int(5)));
        assert!(r[0].range.contains(&Value::Int(9)));
        assert!(!r[0].range.contains(&Value::Int(10)));
        assert!(!r[0].range.contains(&Value::Int(4)));

        let r = ranges("s.k == 7", Some("s"));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].field, "k");
        assert!(r[0].range.contains(&Value::Int(7)));
        assert!(!r[0].range.contains(&Value::Int(8)));
    }

    #[test]
    fn loop_variable_itself_is_not_a_field() {
        assert!(ranges("s == 5", Some("s")).is_empty());
    }

    #[test]
    fn flipped_and_negated_literals() {
        let r = ranges("10 > k && k > -3", None);
        assert_eq!(r.len(), 1);
        assert!(r[0].range.contains(&Value::Int(-2)));
        assert!(!r[0].range.contains(&Value::Int(-3)));
        assert!(!r[0].range.contains(&Value::Int(10)));
    }

    #[test]
    fn non_range_conjuncts_are_ignored_soundly() {
        // `||` at top level: nothing extractable.
        assert!(ranges("k < 5 || k > 10", None).is_empty());
        // Mixed: the `&&` side still narrows.
        let r = ranges("k < 5 && (q < 1 || q > 2)", None);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].field, "k");
    }

    #[test]
    fn disjointness() {
        let a = ranges("k < 50", None).remove(0).range;
        let b = ranges("k >= 50", None).remove(0).range;
        assert!(a.disjoint(&b));
        assert!(b.disjoint(&a));

        let c = ranges("k >= 40 && k < 60", None).remove(0).range;
        assert!(a.overlaps(&c));
        assert!(b.overlaps(&c));

        let p5 = ValueRange::point(Value::Int(5));
        let p6 = ValueRange::point(Value::Int(6));
        assert!(p5.disjoint(&p6));
        assert!(!p5.disjoint(&p5.clone()));

        // Touching endpoints: [.., 50) vs [50, ..] disjoint; [.., 50] vs
        // [50, ..] overlap at 50.
        let le = ranges("k <= 50", None).remove(0).range;
        assert!(!le.disjoint(&b));
    }

    #[test]
    fn strings_order_lexicographically() {
        let r = ranges("name >= \"m\"", None);
        assert!(r[0].range.contains(&Value::Str("zeta".into())));
        assert!(!r[0].range.contains(&Value::Str("alpha".into())));
    }

    #[test]
    fn contradictory_ranges_stay_empty_and_disjoint_from_everything() {
        let r = ranges("k > 10 && k < 5", None).remove(0).range;
        assert!(!r.contains(&Value::Int(7)));
        assert!(r.disjoint(&ValueRange::point(Value::Int(7))));
    }
}
