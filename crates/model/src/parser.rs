//! Recursive-descent parser for the expression language.
//!
//! The surface syntax follows C++ (the host language of O++) closely enough
//! that the paper's predicates parse verbatim: `quantity <= reorder_level`,
//! `sex == 'f' || sex == 'F'`, `e->deptno == d.dno` (`->` and `.` are
//! interchangeable, as both appear in the paper's examples), `p is student`,
//! `$threshold` for trigger activation arguments, and `x in children` for
//! set membership.
//!
//! Grammar (precedence climbing, loosest first):
//!
//! ```text
//! expr     := ternary
//! ternary  := or ('?' expr ':' expr)?
//! or       := and    ('||' and)*
//! and      := rel    ('&&' rel)*
//! rel      := sum    (('=='|'!='|'<'|'<='|'>'|'>=') sum
//!                     | 'is' IDENT | 'in' sum)?
//! sum      := term   (('+'|'-') term)*
//! term     := unary  (('*'|'/'|'%') unary)*
//! unary    := ('-'|'!') unary | postfix
//! postfix  := primary (('.'|'->') IDENT args? | '[' expr ']')*
//! primary  := NUMBER | STRING | CHAR | 'true' | 'false' | 'null'
//!           | '$' IDENT | IDENT args? | '(' expr ')'
//! args     := '(' (expr (',' expr)*)? ')'
//! ```

use crate::error::{ModelError, Result};
use crate::expr::{BinOp, Expr, UnOp};
use crate::value::Value;

/// Parse `src` into an expression tree.
pub fn parse_expr(src: &str) -> Result<Expr> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        at: 0,
        src_len: src.len(),
    };
    let e = p.expr()?;
    match p.peek() {
        Token::Eof => Ok(e),
        t => Err(p.error(format!("unexpected {t} after expression"))),
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Int(i64),
    Float(f64),
    Str(String),
    Ident(String),
    Dollar,
    LParen,
    RParen,
    Comma,
    Dot, // also covers `->`
    Question,
    Colon,
    LBracket,
    RBracket,
    Op(&'static str),
    Eof,
}

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Token::Int(i) => write!(f, "`{i}`"),
            Token::Float(x) => write!(f, "`{x}`"),
            Token::Str(s) => write!(f, "string {s:?}"),
            Token::Ident(s) => write!(f, "`{s}`"),
            Token::Dollar => write!(f, "`$`"),
            Token::LParen => write!(f, "`(`"),
            Token::RParen => write!(f, "`)`"),
            Token::Comma => write!(f, "`,`"),
            Token::Dot => write!(f, "`.`"),
            Token::Question => write!(f, "`?`"),
            Token::Colon => write!(f, "`:`"),
            Token::LBracket => write!(f, "`[`"),
            Token::RBracket => write!(f, "`]`"),
            Token::Op(s) => write!(f, "`{s}`"),
            Token::Eof => write!(f, "end of input"),
        }
    }
}

/// Lexed token plus its byte offset (for error positions).
type Spanned = (Token, usize);

fn lex(src: &str) -> Result<Vec<Spanned>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let err = |at: usize, message: String| ModelError::Parse { message, at };
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push((Token::LParen, i));
                i += 1;
            }
            ')' => {
                out.push((Token::RParen, i));
                i += 1;
            }
            ',' => {
                out.push((Token::Comma, i));
                i += 1;
            }
            '$' => {
                out.push((Token::Dollar, i));
                i += 1;
            }
            '?' => {
                out.push((Token::Question, i));
                i += 1;
            }
            ':' => {
                out.push((Token::Colon, i));
                i += 1;
            }
            '[' => {
                out.push((Token::LBracket, i));
                i += 1;
            }
            ']' => {
                out.push((Token::RBracket, i));
                i += 1;
            }
            '.' if i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() => {
                // `.5` style float
                let (tok, next) = lex_number(src, i)?;
                out.push((tok, i));
                i = next;
            }
            '.' => {
                out.push((Token::Dot, i));
                i += 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'>' => {
                out.push((Token::Dot, i));
                i += 2;
            }
            '"' | '\'' => {
                let quote = c;
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(err(start, "unterminated string literal".into()));
                    }
                    // Read whole characters: literals may contain multibyte
                    // text.
                    let ch = src[i..].chars().next().expect("i is a char boundary");
                    if ch == quote {
                        i += 1;
                        break;
                    }
                    if ch == '\\' {
                        i += 1;
                        if i >= bytes.len() {
                            return Err(err(start, "unterminated escape".into()));
                        }
                        let esc = src[i..].chars().next().expect("i is a char boundary");
                        s.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            '\\' => '\\',
                            '\'' => '\'',
                            '"' => '"',
                            other => return Err(err(i, format!("unknown escape `\\{other}`"))),
                        });
                        i += esc.len_utf8();
                    } else {
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
                out.push((Token::Str(s), start));
            }
            '0'..='9' => {
                let (tok, next) = lex_number(src, i)?;
                out.push((tok, i));
                i = next;
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push((Token::Ident(src[start..i].to_string()), start));
            }
            _ => {
                // Multi-char operators first (byte-wise: the source may
                // contain multibyte characters and must never be sliced on
                // a non-boundary).
                let next = bytes.get(i + 1).copied();
                let op2 = match (bytes[i], next) {
                    (b'=', Some(b'=')) => Some("=="),
                    (b'!', Some(b'=')) => Some("!="),
                    (b'<', Some(b'=')) => Some("<="),
                    (b'>', Some(b'=')) => Some(">="),
                    (b'&', Some(b'&')) => Some("&&"),
                    (b'|', Some(b'|')) => Some("||"),
                    _ => None,
                };
                if let Some(op) = op2 {
                    out.push((Token::Op(op), i));
                    i += 2;
                    continue;
                }
                let op1 = match c {
                    '+' => "+",
                    '-' => "-",
                    '*' => "*",
                    '/' => "/",
                    '%' => "%",
                    '<' => "<",
                    '>' => ">",
                    '!' => "!",
                    _ => {
                        // Report the full (possibly multibyte) character.
                        let full = src[i..].chars().next().unwrap_or('?');
                        return Err(err(i, format!("unexpected character `{full}`")));
                    }
                };
                out.push((Token::Op(op1), i));
                i += 1;
            }
        }
    }
    out.push((Token::Eof, src.len()));
    Ok(out)
}

fn lex_number(src: &str, start: usize) -> Result<(Token, usize)> {
    let bytes = src.as_bytes();
    let mut i = start;
    let mut saw_dot = false;
    let mut saw_exp = false;
    while i < bytes.len() {
        match bytes[i] {
            b'0'..=b'9' => i += 1,
            b'.' if !saw_dot && !saw_exp => {
                // A dot followed by an identifier is member access on an int
                // (not valid anyway); followed by a digit, it's a float.
                if i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
                    saw_dot = true;
                    i += 1;
                } else {
                    break;
                }
            }
            b'e' | b'E' if !saw_exp && i > start => {
                let next = bytes.get(i + 1).copied();
                let next2 = bytes.get(i + 2).copied();
                let exp_ok = matches!(next, Some(b'0'..=b'9'))
                    || (matches!(next, Some(b'+') | Some(b'-'))
                        && matches!(next2, Some(b'0'..=b'9')));
                if exp_ok {
                    saw_exp = true;
                    i += if matches!(next, Some(b'+') | Some(b'-')) {
                        2
                    } else {
                        1
                    };
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    let text = &src[start..i];
    let tok = if saw_dot || saw_exp {
        Token::Float(text.parse().map_err(|_| ModelError::Parse {
            message: format!("bad float literal `{text}`"),
            at: start,
        })?)
    } else {
        Token::Int(text.parse().map_err(|_| ModelError::Parse {
            message: format!("bad int literal `{text}`"),
            at: start,
        })?)
    };
    Ok((tok, i))
}

struct Parser {
    tokens: Vec<Spanned>,
    at: usize,
    src_len: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.at].0
    }

    fn pos(&self) -> usize {
        self.tokens
            .get(self.at)
            .map(|(_, p)| *p)
            .unwrap_or(self.src_len)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.at].0.clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn error(&self, message: String) -> ModelError {
        ModelError::Parse {
            message,
            at: self.pos(),
        }
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if matches!(self.peek(), Token::Op(o) if *o == op) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Token, what: &str) -> Result<()> {
        if self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {}", self.peek())))
        }
    }

    fn expr(&mut self) -> Result<Expr> {
        let cond = self.or()?;
        if *self.peek() == Token::Question {
            self.bump();
            let then = self.expr()?;
            self.expect(&Token::Colon, "`:`")?;
            let otherwise = self.expr()?;
            return Ok(Expr::Cond(
                Box::new(cond),
                Box::new(then),
                Box::new(otherwise),
            ));
        }
        Ok(cond)
    }

    fn or(&mut self) -> Result<Expr> {
        let mut lhs = self.and()?;
        while self.eat_op("||") {
            let rhs = self.and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Expr> {
        let mut lhs = self.rel()?;
        while self.eat_op("&&") {
            let rhs = self.rel()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn rel(&mut self) -> Result<Expr> {
        let lhs = self.sum()?;
        // `is` / `in` keywords.
        if let Token::Ident(kw) = self.peek() {
            if kw == "is" {
                self.bump();
                let class = match self.bump() {
                    Token::Ident(name) => name,
                    other => {
                        return Err(
                            self.error(format!("expected class name after `is`, found {other}"))
                        )
                    }
                };
                return Ok(Expr::Is(Box::new(lhs), class));
            }
            if kw == "in" {
                self.bump();
                let rhs = self.sum()?;
                return Ok(Expr::bin(BinOp::In, lhs, rhs));
            }
        }
        for (sym, op) in [
            ("==", BinOp::Eq),
            ("!=", BinOp::Ne),
            ("<=", BinOp::Le),
            (">=", BinOp::Ge),
            ("<", BinOp::Lt),
            (">", BinOp::Gt),
        ] {
            if self.eat_op(sym) {
                let rhs = self.sum()?;
                return Ok(Expr::bin(op, lhs, rhs));
            }
        }
        Ok(lhs)
    }

    fn sum(&mut self) -> Result<Expr> {
        let mut lhs = self.term()?;
        loop {
            if self.eat_op("+") {
                lhs = Expr::bin(BinOp::Add, lhs, self.term()?);
            } else if self.eat_op("-") {
                lhs = Expr::bin(BinOp::Sub, lhs, self.term()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn term(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            if self.eat_op("*") {
                lhs = Expr::bin(BinOp::Mul, lhs, self.unary()?);
            } else if self.eat_op("/") {
                lhs = Expr::bin(BinOp::Div, lhs, self.unary()?);
            } else if self.eat_op("%") {
                lhs = Expr::bin(BinOp::Mod, lhs, self.unary()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_op("-") {
            return Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)));
        }
        if self.eat_op("!") {
            return Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        loop {
            if *self.peek() == Token::Dot {
                self.bump();
                let name = match self.bump() {
                    Token::Ident(n) => n,
                    other => {
                        return Err(
                            self.error(format!("expected member name after `.`, found {other}"))
                        )
                    }
                };
                if *self.peek() == Token::LParen {
                    let args = self.args()?;
                    e = Expr::Call {
                        recv: Some(Box::new(e)),
                        name,
                        args,
                    };
                } else {
                    e = Expr::Path(Box::new(e), name);
                }
            } else if *self.peek() == Token::LBracket {
                self.bump();
                let ix = self.expr()?;
                self.expect(&Token::RBracket, "`]`")?;
                e = Expr::Index(Box::new(e), Box::new(ix));
            } else {
                return Ok(e);
            }
        }
    }

    fn args(&mut self) -> Result<Vec<Expr>> {
        self.expect(&Token::LParen, "`(`")?;
        let mut args = Vec::new();
        if *self.peek() == Token::RParen {
            self.bump();
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            match self.bump() {
                Token::Comma => continue,
                Token::RParen => return Ok(args),
                other => return Err(self.error(format!("expected `,` or `)`, found {other}"))),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.bump() {
            Token::Int(i) => Ok(Expr::Lit(Value::Int(i))),
            Token::Float(x) => Ok(Expr::Lit(Value::Float(x))),
            Token::Str(s) => Ok(Expr::Lit(Value::Str(s))),
            Token::Dollar => match self.bump() {
                Token::Ident(n) => Ok(Expr::Param(n)),
                other => {
                    Err(self.error(format!("expected parameter name after `$`, found {other}")))
                }
            },
            Token::Ident(name) => match name.as_str() {
                "true" => Ok(Expr::Lit(Value::Bool(true))),
                "false" => Ok(Expr::Lit(Value::Bool(false))),
                "null" => Ok(Expr::Lit(Value::Null)),
                _ => {
                    if *self.peek() == Token::LParen {
                        let args = self.args()?;
                        Ok(Expr::Call {
                            recv: None,
                            name,
                            args,
                        })
                    } else {
                        Ok(Expr::Ident(name))
                    }
                }
            },
            Token::LParen => {
                let e = self.expr()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(e)
            }
            other => Err(self.error(format!("expected an expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: &str) -> Expr {
        parse_expr(src).unwrap_or_else(|e| panic!("parse {src:?}: {e}"))
    }

    #[test]
    fn paper_examples_parse() {
        // §5: constraint-based specialization of class female.
        p("sex == 'f' || sex == 'F'");
        // §6: reorder trigger condition.
        p("quantity <= reorder_level");
        // §3.1: join predicate over two loop variables (both arrows work).
        assert_eq!(p("e->deptno == d.dno"), p("e.deptno == d.dno"));
        // §3.1.1: hierarchy type test.
        p("p is student");
    }

    #[test]
    fn precedence() {
        assert_eq!(p("1 + 2 * 3").to_string(), "(1 + (2 * 3))");
        assert_eq!(p("a || b && c").to_string(), "(a || (b && c))");
        assert_eq!(
            p("1 + 2 < 4 && true").to_string(),
            "(((1 + 2) < 4) && true)"
        );
        assert_eq!(p("-2 + 3").to_string(), "(-(2) + 3)");
        assert_eq!(p("!a && b").to_string(), "(!(a) && b)");
    }

    #[test]
    fn literals() {
        assert_eq!(p("42"), Expr::Lit(Value::Int(42)));
        assert_eq!(p("4.25"), Expr::Lit(Value::Float(4.25)));
        assert_eq!(p("1e3"), Expr::Lit(Value::Float(1000.0)));
        assert_eq!(p("2.5e-1"), Expr::Lit(Value::Float(0.25)));
        assert_eq!(p("'f'"), Expr::Lit(Value::Str("f".into())));
        assert_eq!(p(r#""at&t""#), Expr::Lit(Value::Str("at&t".into())));
        assert_eq!(p("true"), Expr::Lit(Value::Bool(true)));
        assert_eq!(p("null"), Expr::Lit(Value::Null));
        assert_eq!(
            p(r#""line\nbreak""#),
            Expr::Lit(Value::Str("line\nbreak".into()))
        );
    }

    #[test]
    fn params_and_membership() {
        assert_eq!(
            p("quantity < $threshold"),
            Expr::bin(
                BinOp::Lt,
                Expr::ident("quantity"),
                Expr::Param("threshold".into())
            )
        );
        assert_eq!(
            p("x in children"),
            Expr::bin(BinOp::In, Expr::ident("x"), Expr::ident("children"))
        );
    }

    #[test]
    fn method_calls() {
        assert_eq!(
            p("income()"),
            Expr::Call {
                recv: None,
                name: "income".into(),
                args: vec![]
            }
        );
        assert_eq!(
            p("p.income(2, 'y')"),
            Expr::Call {
                recv: Some(Box::new(Expr::ident("p"))),
                name: "income".into(),
                args: vec![Expr::lit(2), Expr::lit("y")]
            }
        );
        // Chained access after a call result is still a path.
        p("dept().budget > 100");
    }

    #[test]
    fn deep_paths() {
        assert_eq!(
            p("a.b.c"),
            Expr::Path(
                Box::new(Expr::Path(Box::new(Expr::ident("a")), "b".into())),
                "c".into()
            )
        );
        assert_eq!(p("a->b->c"), p("a.b.c"));
    }

    #[test]
    fn errors_carry_positions() {
        let e = parse_expr("a ++ b").unwrap_err();
        match e {
            ModelError::Parse { at, .. } => assert!(at >= 3, "at={at}"),
            other => panic!("wrong error {other}"),
        }
        assert!(parse_expr("(a").is_err());
        assert!(parse_expr("a b").is_err());
        assert!(parse_expr("'unterminated").is_err());
        assert!(parse_expr("").is_err());
        assert!(parse_expr("x is 3").is_err());
        assert!(parse_expr("$3").is_err());
        assert!(parse_expr("f(a,,b)").is_err());
        assert!(parse_expr("a @ b").is_err());
    }

    #[test]
    fn leading_dot_float() {
        assert_eq!(p(".5"), Expr::Lit(Value::Float(0.5)));
    }
}
