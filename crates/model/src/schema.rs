//! The schema: every class known to the database, linearized and checked.
//!
//! Multiple inheritance is resolved with **C3 linearization** (the
//! method-resolution order used by modern OO languages). The paper's
//! person/student/faculty hierarchy and its diamond variants (a class
//! appearing through several base paths) resolve to layouts in which every
//! shared base contributes its members exactly once — matching the shared
//! (virtual-base) reading the paper's examples rely on.
//!
//! The schema also hosts the *method registry*: O++ member functions become
//! Rust closures registered per class. Method lookup follows the
//! linearization, giving virtual-function dispatch. Methods are code, not
//! data — they are re-registered by the application at open time; only
//! their use sites (constraint/trigger sources) persist in the catalog.

use std::collections::HashMap;
use std::sync::Arc;

use crate::class::{
    ClassBuilder, ClassDef, ClassId, ConstraintDef, LayoutField, TriggerAction, TriggerDecl,
};
use crate::error::{ModelError, Result};
use crate::parser::parse_expr;
use crate::value::{ObjState, Value};

/// Signature of a registered method (an O++ member function): receives the
/// object's state and evaluated arguments, returns a value.
pub type MethodFn = Arc<dyn Fn(&ObjState, &[Value]) -> Result<Value> + Send + Sync>;

/// All class definitions plus the method registry.
#[derive(Default, Clone)]
pub struct Schema {
    classes: Vec<ClassDef>,
    by_name: HashMap<String, ClassId>,
    /// Direct subclasses (inverse of `bases`).
    derived: HashMap<ClassId, Vec<ClassId>>,
    methods: HashMap<(ClassId, String), MethodFn>,
}

impl std::fmt::Debug for Schema {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Schema")
            .field("classes", &self.classes.len())
            .field("methods", &self.methods.len())
            .finish()
    }
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// All classes, in definition order.
    pub fn classes(&self) -> &[ClassDef] {
        &self.classes
    }

    /// Look a class up by id.
    pub fn class(&self, id: ClassId) -> Result<&ClassDef> {
        self.classes
            .get(id.0 as usize)
            .ok_or_else(|| ModelError::UnknownClass(format!("{id}")))
    }

    /// Look a class up by name.
    pub fn class_by_name(&self, name: &str) -> Result<&ClassDef> {
        let id = self.id_of(name)?;
        self.class(id)
    }

    /// Id of the class named `name`.
    pub fn id_of(&self, name: &str) -> Result<ClassId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| ModelError::UnknownClass(name.to_string()))
    }

    /// Is `sub` the same class as, or a (transitive) subclass of, `sup`?
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        self.classes
            .get(sub.0 as usize)
            .map(|c| c.linearization.contains(&sup))
            .unwrap_or(false)
    }

    /// `class` itself plus every class derived from it, in BFS order —
    /// the shape of a cluster-hierarchy iteration (§3.1.1).
    pub fn descendants(&self, class: ClassId) -> Vec<ClassId> {
        let mut out = vec![class];
        let mut i = 0;
        while i < out.len() {
            if let Some(children) = self.derived.get(&out[i]) {
                for c in children {
                    if !out.contains(c) {
                        out.push(*c);
                    }
                }
            }
            i += 1;
        }
        out
    }

    /// Define a class from a builder: resolves bases, computes the C3
    /// linearization and field layout, parses constraint and trigger
    /// sources.
    pub fn define(&mut self, builder: ClassBuilder) -> Result<ClassId> {
        if self.by_name.contains_key(&builder.name) {
            return Err(ModelError::Inheritance(format!(
                "class `{}` is already defined",
                builder.name
            )));
        }
        let bases: Vec<ClassId> = builder
            .bases
            .iter()
            .map(|b| self.id_of(b))
            .collect::<Result<_>>()?;
        {
            let mut seen = Vec::new();
            for b in &bases {
                if seen.contains(b) {
                    return Err(ModelError::Inheritance(format!(
                        "class `{}` lists base `{}` twice",
                        builder.name,
                        self.class(*b)?.name
                    )));
                }
                seen.push(*b);
            }
        }
        let id = ClassId(self.classes.len() as u32);
        let linearization = self.linearize(id, &bases, &builder.name)?;
        let layout = self.build_layout(&linearization, &builder)?;

        // Parse constraints.
        let mut constraints = Vec::new();
        for (i, (name, src)) in builder.constraints.iter().enumerate() {
            let expr = parse_expr(src)?;
            constraints.push(ConstraintDef {
                name: name
                    .clone()
                    .unwrap_or_else(|| format!("{}#{}", builder.name, i)),
                src: src.clone(),
                expr,
            });
        }

        // Parse triggers.
        let mut triggers = Vec::new();
        for spec in &builder.triggers {
            if triggers.iter().any(|t: &TriggerDecl| t.name == spec.name) {
                return Err(ModelError::Inheritance(format!(
                    "class `{}` declares trigger `{}` twice",
                    builder.name, spec.name
                )));
            }
            let condition = parse_expr(&spec.condition_src)?;
            let mut actions = Vec::new();
            for a in &spec.actions {
                actions.push(match a {
                    crate::class::ActionSpec::Assign { field, src } => TriggerAction::Assign {
                        field: field.clone(),
                        src: src.clone(),
                        expr: parse_expr(src)?,
                    },
                    crate::class::ActionSpec::Callback { name } => {
                        TriggerAction::Callback { name: name.clone() }
                    }
                });
            }
            triggers.push(TriggerDecl {
                name: spec.name.clone(),
                params: spec.params.clone(),
                perpetual: spec.perpetual,
                condition_src: spec.condition_src.clone(),
                condition,
                actions,
            });
        }

        // Validate that constraint/trigger-action field references resolve
        // against the layout (catches typos at definition time).
        for c in &constraints {
            self.check_field_refs(&c.expr, &layout, &builder.name, &c.src)?;
        }
        for t in &triggers {
            self.check_field_refs(&t.condition, &layout, &builder.name, &t.condition_src)?;
            for a in &t.actions {
                if let TriggerAction::Assign { field, expr, src } = a {
                    if !layout.iter().any(|f| &f.name == field) {
                        return Err(ModelError::UnknownField {
                            class: builder.name.clone(),
                            field: field.clone(),
                        });
                    }
                    self.check_field_refs(expr, &layout, &builder.name, src)?;
                }
            }
        }

        let def = ClassDef {
            id,
            name: builder.name.clone(),
            bases: bases.clone(),
            own_fields: builder.fields.clone(),
            constraints,
            triggers,
            linearization,
            layout,
        };
        for b in &bases {
            self.derived.entry(*b).or_default().push(id);
        }
        self.by_name.insert(builder.name, id);
        self.classes.push(def);
        Ok(id)
    }

    /// Bare identifiers in constraint/trigger expressions must name layout
    /// fields or methods (loop variables never appear there; `$params` are
    /// checked at activation).
    fn check_field_refs(
        &self,
        expr: &crate::expr::Expr,
        layout: &[LayoutField],
        class_name: &str,
        src: &str,
    ) -> Result<()> {
        for ident in expr.free_idents() {
            if !layout.iter().any(|f| f.name == ident) {
                return Err(ModelError::Parse {
                    message: format!("`{ident}` in `{src}` is not a field of class `{class_name}`"),
                    at: 0,
                });
            }
        }
        Ok(())
    }

    /// C3 linearization of a new class with the given direct bases.
    fn linearize(&self, this: ClassId, bases: &[ClassId], name: &str) -> Result<Vec<ClassId>> {
        // merge(L(B1), …, L(Bn), [B1 … Bn])
        let mut sequences: Vec<Vec<ClassId>> = bases
            .iter()
            .map(|b| self.classes[b.0 as usize].linearization.clone())
            .collect();
        if !bases.is_empty() {
            sequences.push(bases.to_vec());
        }
        let mut result = vec![this];
        loop {
            sequences.retain(|s| !s.is_empty());
            if sequences.is_empty() {
                return Ok(result);
            }
            // Find a head that appears in no other sequence's tail.
            let mut chosen = None;
            for s in &sequences {
                let head = s[0];
                let in_tail = sequences
                    .iter()
                    .any(|other| other.iter().skip(1).any(|&c| c == head));
                if !in_tail {
                    chosen = Some(head);
                    break;
                }
            }
            let Some(head) = chosen else {
                return Err(ModelError::Inheritance(format!(
                    "no C3 linearization exists for class `{name}` (inconsistent base order)"
                )));
            };
            result.push(head);
            for s in &mut sequences {
                s.retain(|&c| c != head);
            }
        }
    }

    /// Flatten fields: base-most classes first (reverse linearization), each
    /// class exactly once, duplicate member names rejected.
    fn build_layout(
        &self,
        linearization: &[ClassId],
        builder: &ClassBuilder,
    ) -> Result<Vec<LayoutField>> {
        let mut layout: Vec<LayoutField> = Vec::new();
        for &cid in linearization.iter().rev() {
            let (class_name, fields): (&str, &[crate::class::FieldDef]) =
                if cid.0 as usize == self.classes.len() {
                    (&builder.name, &builder.fields)
                } else {
                    let c = &self.classes[cid.0 as usize];
                    (&c.name, &c.own_fields)
                };
            for f in fields {
                if let Some(existing) = layout.iter().find(|lf| lf.name == f.name) {
                    let declared_in = self
                        .classes
                        .get(existing.declared_in.0 as usize)
                        .map(|c| c.name.clone())
                        .unwrap_or_else(|| builder.name.clone());
                    return Err(ModelError::Inheritance(format!(
                        "member `{}` of `{class_name}` collides with the one declared in `{declared_in}`",
                        f.name
                    )));
                }
                layout.push(LayoutField {
                    name: f.name.clone(),
                    ty: f.ty.clone(),
                    declared_in: cid,
                    default: f.default.clone(),
                });
            }
        }
        Ok(layout)
    }

    /// Construct a fresh object of `class` with defaults applied.
    pub fn new_object(&self, class: ClassId) -> Result<ObjState> {
        let def = self.class(class)?;
        let fields = def
            .layout
            .iter()
            .map(|f| f.default.clone().unwrap_or(Value::Null))
            .collect();
        Ok(ObjState { class, fields })
    }

    /// Type-check `value` against the declared type of `field` on `class`.
    pub fn check_assign(&self, class: ClassId, field: &str, value: &Value) -> Result<usize> {
        let def = self.class(class)?;
        let idx = def.field_index(field)?;
        let slot = &def.layout[idx];
        if !slot.ty.admits(value) {
            return Err(ModelError::Type(format!(
                "cannot assign {value} to `{}.{}` of type {}",
                def.name,
                field,
                slot.ty.name()
            )));
        }
        Ok(idx)
    }

    /// Register a method (O++ member function) on a class. Derived classes
    /// inherit it; re-registering on a derived class overrides (virtual
    /// dispatch).
    pub fn register_method(
        &mut self,
        class: ClassId,
        name: impl Into<String>,
        f: impl Fn(&ObjState, &[Value]) -> Result<Value> + Send + Sync + 'static,
    ) {
        self.methods.insert((class, name.into()), Arc::new(f));
    }

    /// Resolve a method along the linearization of the *dynamic* class.
    pub fn lookup_method(&self, class: ClassId, name: &str) -> Result<MethodFn> {
        let def = self.class(class)?;
        for &cid in &def.linearization {
            if let Some(m) = self.methods.get(&(cid, name.to_string())) {
                return Ok(m.clone());
            }
        }
        Err(ModelError::UnknownMethod {
            class: def.name.clone(),
            method: name.to_string(),
        })
    }

    /// Every constraint that applies to `class`: its own plus all inherited
    /// ones (a derived object "must satisfy all the constraints associated
    /// with the corresponding class", §5), base-most first.
    pub fn all_constraints(&self, class: ClassId) -> Result<Vec<(&ClassDef, &ConstraintDef)>> {
        let def = self.class(class)?;
        let mut out = Vec::new();
        for &cid in def.linearization.iter().rev() {
            let c = self.class(cid)?;
            for k in &c.constraints {
                out.push((c, k));
            }
        }
        Ok(out)
    }

    /// Every trigger declaration visible on `class` (own + inherited),
    /// base-most first. A derived class may redeclare a name to override.
    pub fn all_triggers(&self, class: ClassId) -> Result<Vec<(&ClassDef, &TriggerDecl)>> {
        let def = self.class(class)?;
        let mut out: Vec<(&ClassDef, &TriggerDecl)> = Vec::new();
        for &cid in def.linearization.iter().rev() {
            let c = self.class(cid)?;
            for t in &c.triggers {
                if let Some(slot) = out.iter_mut().find(|(_, existing)| existing.name == t.name) {
                    *slot = (c, t); // override by the more-derived class
                } else {
                    out.push((c, t));
                }
            }
        }
        Ok(out)
    }

    /// Find a trigger by name on `class` (following inheritance).
    pub fn find_trigger(&self, class: ClassId, name: &str) -> Result<(&ClassDef, &TriggerDecl)> {
        self.all_triggers(class)?
            .into_iter()
            .find(|(_, t)| t.name == name)
            .ok_or_else(|| ModelError::UnknownMethod {
                class: self
                    .class(class)
                    .map(|c| c.name.clone())
                    .unwrap_or_default(),
                method: format!("trigger {name}"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Type;

    fn person_schema() -> (Schema, ClassId, ClassId, ClassId, ClassId) {
        let mut s = Schema::new();
        let person = s
            .define(
                ClassBuilder::new("person")
                    .field("name", Type::Str)
                    .field_default("income_base", Type::Int, 0),
            )
            .unwrap();
        let student = s
            .define(
                ClassBuilder::new("student")
                    .base("person")
                    .field("gpa", Type::Float),
            )
            .unwrap();
        let faculty = s
            .define(
                ClassBuilder::new("faculty")
                    .base("person")
                    .field("dept", Type::Str),
            )
            .unwrap();
        // The classic diamond: a teaching assistant is both.
        let ta = s
            .define(
                ClassBuilder::new("teaching_assistant")
                    .base("student")
                    .base("faculty")
                    .field("hours", Type::Int),
            )
            .unwrap();
        (s, person, student, faculty, ta)
    }

    #[test]
    fn single_inheritance_layout() {
        let (s, person, student, ..) = person_schema();
        let st = s.class(student).unwrap();
        let names: Vec<&str> = st.layout.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["name", "income_base", "gpa"]);
        assert!(s.is_subclass(student, person));
        assert!(!s.is_subclass(person, student));
        assert!(s.is_subclass(person, person));
    }

    #[test]
    fn diamond_shares_the_common_base() {
        let (s, person, student, faculty, ta) = person_schema();
        let def = s.class(ta).unwrap();
        // person appears exactly once in the linearization.
        assert_eq!(
            def.linearization.iter().filter(|&&c| c == person).count(),
            1
        );
        // Layout is reverse-MRO: person's fields exactly once (base-most
        // first), then faculty's, then student's, then ta's own.
        let names: Vec<&str> = def.layout.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["name", "income_base", "dept", "gpa", "hours"]);
        assert!(s.is_subclass(ta, student));
        assert!(s.is_subclass(ta, faculty));
        assert!(s.is_subclass(ta, person));
    }

    #[test]
    fn c3_order_respects_base_declaration_order() {
        let (s, person, student, faculty, ta) = person_schema();
        let def = s.class(ta).unwrap();
        assert_eq!(def.linearization, vec![ta, student, faculty, person]);
    }

    #[test]
    fn descendants_mirror_the_cluster_hierarchy() {
        let (s, person, student, faculty, ta) = person_schema();
        let d = s.descendants(person);
        assert_eq!(d[0], person);
        assert!(d.contains(&student));
        assert!(d.contains(&faculty));
        assert!(d.contains(&ta));
        assert_eq!(d.len(), 4);
        assert_eq!(s.descendants(ta), vec![ta]);
    }

    #[test]
    fn field_collision_across_unrelated_bases_is_rejected() {
        let mut s = Schema::new();
        s.define(ClassBuilder::new("a").field("x", Type::Int))
            .unwrap();
        s.define(ClassBuilder::new("b").field("x", Type::Int))
            .unwrap();
        let err = s
            .define(ClassBuilder::new("c").base("a").base("b"))
            .unwrap_err();
        assert!(matches!(err, ModelError::Inheritance(_)), "{err}");
    }

    #[test]
    fn duplicate_class_name_rejected() {
        let mut s = Schema::new();
        s.define(ClassBuilder::new("a")).unwrap();
        assert!(s.define(ClassBuilder::new("a")).is_err());
    }

    #[test]
    fn unknown_base_rejected() {
        let mut s = Schema::new();
        assert!(matches!(
            s.define(ClassBuilder::new("x").base("ghost")),
            Err(ModelError::UnknownClass(_))
        ));
    }

    #[test]
    fn inconsistent_hierarchy_has_no_linearization() {
        // Classic C3 failure: order conflict between bases.
        let mut s = Schema::new();
        s.define(ClassBuilder::new("o")).unwrap();
        s.define(ClassBuilder::new("a").base("o")).unwrap();
        s.define(ClassBuilder::new("b").base("o")).unwrap();
        s.define(ClassBuilder::new("ab").base("a").base("b"))
            .unwrap();
        s.define(ClassBuilder::new("ba").base("b").base("a"))
            .unwrap();
        let err = s
            .define(ClassBuilder::new("boom").base("ab").base("ba"))
            .unwrap_err();
        assert!(matches!(err, ModelError::Inheritance(_)), "{err}");
    }

    #[test]
    fn defaults_applied_to_new_objects() {
        let (s, person, ..) = person_schema();
        let obj = s.new_object(person).unwrap();
        assert_eq!(obj.fields[0], Value::Null); // name: no default
        assert_eq!(obj.fields[1], Value::Int(0)); // income_base: default
    }

    #[test]
    fn check_assign_enforces_types() {
        let (s, person, ..) = person_schema();
        assert!(s
            .check_assign(person, "name", &Value::Str("ann".into()))
            .is_ok());
        assert!(s.check_assign(person, "name", &Value::Int(5)).is_err());
        assert!(matches!(
            s.check_assign(person, "ghost", &Value::Null),
            Err(ModelError::UnknownField { .. })
        ));
    }

    #[test]
    fn method_dispatch_follows_linearization() {
        let (mut s, person, student, _f, ta) = person_schema();
        s.register_method(person, "income", |_o, _a| Ok(Value::Int(100)));
        s.register_method(student, "income", |_o, _a| Ok(Value::Int(25)));
        let o = s.new_object(ta).unwrap();
        // ta inherits student's override (student precedes person in MRO).
        let m = s.lookup_method(ta, "income").unwrap();
        assert_eq!(m(&o, &[]).unwrap(), Value::Int(25));
        let m = s.lookup_method(person, "income").unwrap();
        assert_eq!(m(&o, &[]).unwrap(), Value::Int(100));
        assert!(s.lookup_method(person, "ghost").is_err());
    }

    #[test]
    fn constraints_are_inherited() {
        let mut s = Schema::new();
        s.define(
            ClassBuilder::new("person")
                .field("age", Type::Int)
                .constraint("age >= 0"),
        )
        .unwrap();
        let female = s
            .define(
                ClassBuilder::new("female")
                    .base("person")
                    .field("sex", Type::Str)
                    .constraint("sex == 'f' || sex == 'F'"),
            )
            .unwrap();
        let all = s.all_constraints(female).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].1.src, "age >= 0");
        assert_eq!(all[1].1.src, "sex == 'f' || sex == 'F'");
    }

    #[test]
    fn constraint_with_unknown_field_rejected_at_definition() {
        let mut s = Schema::new();
        let err = s
            .define(
                ClassBuilder::new("x")
                    .field("a", Type::Int)
                    .constraint("b > 0"),
            )
            .unwrap_err();
        assert!(err.to_string().contains("`b`"), "{err}");
    }

    #[test]
    fn trigger_override_in_derived_class() {
        let mut s = Schema::new();
        s.define(ClassBuilder::new("item").field("qty", Type::Int).trigger(
            "low",
            &[],
            false,
            "qty < 10",
        ))
        .unwrap();
        let special = s
            .define(ClassBuilder::new("special_item").base("item").trigger(
                "low",
                &[],
                false,
                "qty < 100",
            ))
            .unwrap();
        let trigs = s.all_triggers(special).unwrap();
        assert_eq!(trigs.len(), 1);
        assert_eq!(trigs[0].1.condition_src, "qty < 100");
        let (_, t) = s.find_trigger(special, "low").unwrap();
        assert_eq!(t.condition_src, "qty < 100");
    }

    #[test]
    fn trigger_params_are_exempt_from_field_checking() {
        let mut s = Schema::new();
        s.define(ClassBuilder::new("stock").field("qty", Type::Int).trigger(
            "low",
            &["threshold"],
            false,
            "qty < $threshold",
        ))
        .unwrap();
    }
}
