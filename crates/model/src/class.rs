//! Class definitions: the O++ `class` construct.
//!
//! §2 of the paper: classes support *data encapsulation* and *multiple
//! inheritance*; constraints (§5) and triggers (§6) attach to classes and
//! are inherited by derived classes. A [`ClassBuilder`] collects the
//! declaration (fields, bases, constraint and trigger source text) and
//! [`crate::Schema::define`] turns it into a checked [`ClassDef`] with a
//! linearized field layout.
//!
//! Constraint bodies and trigger conditions are kept both as source text
//! (persisted in the catalog) and as parsed [`Expr`]s (used at run time).

use crate::error::{ModelError, Result};
use crate::expr::Expr;
use crate::value::{Type, Value};

/// Dense class identifier (index into the schema's class table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

impl std::fmt::Display for ClassId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One declared field (an O++ data member).
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDef {
    /// Member name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Initial value for new objects (`Null` when absent).
    pub default: Option<Value>,
}

/// What a trigger does when it fires (§6). The paper writes actions as
/// arbitrary O++ statements run in their own transaction; here an action is
/// a sequence of field assignments on the subject object and/or calls to
/// host-registered callbacks.
#[derive(Debug, Clone, PartialEq)]
pub enum TriggerAction {
    /// Assign `expr` (evaluated against the subject object) to its field.
    Assign {
        /// Target field on the subject object.
        field: String,
        /// Source text of the value expression (persisted).
        src: String,
        /// Parsed form.
        expr: Expr,
    },
    /// Invoke a callback registered on the database under this name. The
    /// callback receives the subject oid and the activation arguments.
    Callback {
        /// Registered callback name.
        name: String,
    },
}

/// A trigger declaration on a class (§6). Activation (binding to a
/// particular object with arguments) happens in the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerDecl {
    /// Trigger name, unique within the class.
    pub name: String,
    /// Formal parameters; activation supplies matching argument values,
    /// available in the condition as `$param`.
    pub params: Vec<String>,
    /// Perpetual triggers re-arm after firing; once-only triggers (the
    /// default in the paper) deactivate.
    pub perpetual: bool,
    /// Source text of the firing condition (persisted).
    pub condition_src: String,
    /// Parsed firing condition.
    pub condition: Expr,
    /// Actions run (in order, in an independent transaction) on firing.
    pub actions: Vec<TriggerAction>,
}

/// A named, parsed constraint (§5).
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintDef {
    /// Diagnostic name (auto-generated when not given).
    pub name: String,
    /// Source text (persisted).
    pub src: String,
    /// Parsed boolean expression over the object's fields/methods.
    pub expr: Expr,
}

/// A fully-checked class: the output of [`crate::Schema::define`].
#[derive(Debug, Clone)]
pub struct ClassDef {
    /// Dense id.
    pub id: ClassId,
    /// Class name (unique in the schema).
    pub name: String,
    /// Direct base classes, in declaration order.
    pub bases: Vec<ClassId>,
    /// Fields declared *by this class* (not inherited ones).
    pub own_fields: Vec<FieldDef>,
    /// Constraints declared by this class (inherited ones are found via the
    /// linearization).
    pub constraints: Vec<ConstraintDef>,
    /// Trigger declarations of this class.
    pub triggers: Vec<TriggerDecl>,
    /// C3 linearization: `self` first, then bases in method-resolution
    /// order. Diamond bases appear exactly once (shared, like C++ virtual
    /// bases — this matches the paper's person/student/faculty examples).
    pub linearization: Vec<ClassId>,
    /// Flattened field layout: base-most fields first. `fields[i]` is the
    /// value slot `i` of every object of this class.
    pub layout: Vec<LayoutField>,
}

/// One slot of a class's flattened field layout.
#[derive(Debug, Clone)]
pub struct LayoutField {
    /// Member name (unique across the whole layout).
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// The class that declared this member.
    pub declared_in: ClassId,
    /// Default value for new objects.
    pub default: Option<Value>,
}

impl ClassDef {
    /// Index of `field` in the layout.
    pub fn field_index(&self, field: &str) -> Result<usize> {
        self.layout
            .iter()
            .position(|f| f.name == field)
            .ok_or_else(|| ModelError::UnknownField {
                class: self.name.clone(),
                field: field.to_string(),
            })
    }

    /// Layout slot metadata for `field`.
    pub fn field(&self, field: &str) -> Result<&LayoutField> {
        let i = self.field_index(field)?;
        Ok(&self.layout[i])
    }

    /// Number of value slots in an object of this class.
    pub fn field_count(&self) -> usize {
        self.layout.len()
    }
}

/// Declarative builder for a class. All expression text is parsed and
/// checked when the builder is passed to [`crate::Schema::define`].
#[derive(Debug, Clone)]
pub struct ClassBuilder {
    pub(crate) name: String,
    pub(crate) bases: Vec<String>,
    pub(crate) fields: Vec<FieldDef>,
    pub(crate) constraints: Vec<(Option<String>, String)>,
    pub(crate) triggers: Vec<TriggerSpec>,
}

/// Unparsed trigger specification inside a [`ClassBuilder`].
#[derive(Debug, Clone)]
pub(crate) struct TriggerSpec {
    pub name: String,
    pub params: Vec<String>,
    pub perpetual: bool,
    pub condition_src: String,
    pub actions: Vec<ActionSpec>,
}

/// Unparsed action specification inside a [`ClassBuilder`].
#[derive(Debug, Clone)]
pub(crate) enum ActionSpec {
    Assign { field: String, src: String },
    Callback { name: String },
}

impl ClassBuilder {
    /// The class name this builder declares.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Start declaring a class named `name`.
    pub fn new(name: impl Into<String>) -> ClassBuilder {
        ClassBuilder {
            name: name.into(),
            bases: Vec::new(),
            fields: Vec::new(),
            constraints: Vec::new(),
            triggers: Vec::new(),
        }
    }

    /// Add a direct base class (multiple inheritance = call repeatedly).
    pub fn base(mut self, name: impl Into<String>) -> Self {
        self.bases.push(name.into());
        self
    }

    /// Declare a data member.
    pub fn field(mut self, name: impl Into<String>, ty: Type) -> Self {
        self.fields.push(FieldDef {
            name: name.into(),
            ty,
            default: None,
        });
        self
    }

    /// Declare a data member with a default value for new objects.
    pub fn field_default(
        mut self,
        name: impl Into<String>,
        ty: Type,
        default: impl Into<Value>,
    ) -> Self {
        self.fields.push(FieldDef {
            name: name.into(),
            ty,
            default: Some(default.into()),
        });
        self
    }

    /// Attach a constraint (§5): a boolean expression over the class's
    /// fields and methods, e.g. `"quantity >= 0 && price > 0.0"`.
    pub fn constraint(mut self, src: impl Into<String>) -> Self {
        self.constraints.push((None, src.into()));
        self
    }

    /// Attach a named constraint (name shows up in violation errors).
    pub fn constraint_named(mut self, name: impl Into<String>, src: impl Into<String>) -> Self {
        self.constraints.push((Some(name.into()), src.into()));
        self
    }

    /// Declare a trigger (§6). `params` are formal names available in the
    /// condition as `$name`; `actions` run when the condition holds at the
    /// end of a transaction that wrote the subject object.
    pub fn trigger(
        mut self,
        name: impl Into<String>,
        params: &[&str],
        perpetual: bool,
        condition: impl Into<String>,
    ) -> Self {
        self.triggers.push(TriggerSpec {
            name: name.into(),
            params: params.iter().map(|s| s.to_string()).collect(),
            perpetual,
            condition_src: condition.into(),
            actions: Vec::new(),
        });
        self
    }

    /// Add a field-assignment action to the most recently declared trigger.
    ///
    /// # Panics
    /// Panics if no trigger has been declared yet (a builder-usage bug).
    pub fn action_assign(mut self, field: impl Into<String>, src: impl Into<String>) -> Self {
        self.triggers
            .last_mut()
            .expect("action_assign must follow trigger()")
            .actions
            .push(ActionSpec::Assign {
                field: field.into(),
                src: src.into(),
            });
        self
    }

    /// Add a host-callback action to the most recently declared trigger.
    ///
    /// # Panics
    /// Panics if no trigger has been declared yet (a builder-usage bug).
    pub fn action_callback(mut self, name: impl Into<String>) -> Self {
        self.triggers
            .last_mut()
            .expect("action_callback must follow trigger()")
            .actions
            .push(ActionSpec::Callback { name: name.into() });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_declarations() {
        let b = ClassBuilder::new("stockitem")
            .field("name", Type::Str)
            .field_default("quantity", Type::Int, 0)
            .constraint("quantity >= 0")
            .trigger("reorder", &[], false, "quantity < reorder_level")
            .action_callback("place_order");
        assert_eq!(b.name, "stockitem");
        assert_eq!(b.fields.len(), 2);
        assert_eq!(b.constraints.len(), 1);
        assert_eq!(b.triggers.len(), 1);
        assert_eq!(b.triggers[0].actions.len(), 1);
    }

    #[test]
    #[should_panic(expected = "must follow trigger()")]
    fn action_without_trigger_panics() {
        let _ = ClassBuilder::new("x").action_callback("cb");
    }
}
