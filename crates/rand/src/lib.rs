//! Vendored stand-in for the `rand` crate (offline build). The workspace
//! routes the `rand` dependency here; only the surface Ode's workloads and
//! soak tests use is provided: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! and `Rng::gen_range` over integer and float ranges.
//!
//! The generator is SplitMix64 — not cryptographic, but fast, well mixed,
//! and fully deterministic for a given seed, which is all the benches and
//! soak tests require.

use std::ops::Range;

/// Low-level generator interface: a source of 64 random bits.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open for `a..b`).
    ///
    /// Panics if the range is empty, like rand.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A uniform `bool` with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Range types that can produce a uniform sample (subset of rand's trait).
pub trait SampleRange<T> {
    /// Sample one value from `self`.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let u = rng.gen_range(0..3usize);
            assert!(u < 3);
            let f = rng.gen_range(0.5..50.0);
            assert!((0.5..50.0).contains(&f));
            let n = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&n));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0..u64::MAX) == b.gen_range(0..u64::MAX))
            .count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }
}
