//! Figure F13 — commit latency vs. armed-trigger count, decoupled mode.
//!
//! The point of the PR-7 scheduler is that arming triggers must not tax
//! writers: a commit pays only for activations on the objects it
//! actually wrote (and merely *enqueues* any firings instead of running
//! their actions inline). This figure arms 0 / 1 / 1k / 100k perpetual
//! triggers on *other* objects, attaches a scheduler (the server's
//! configuration), and measures the p50 latency of a single-object
//! commit at each level, trials interleaved across levels so drift hits
//! all arms equally.
//!
//! The acceptance bar: with 100k armed non-matching triggers, p50 commit
//! latency within 10% of the zero-trigger baseline.
//!
//! Output: a table on stderr and `BENCH_f13.json` at the repo root
//! (override with `ODE_BENCH_OUT`). Set `ODE_BENCH_QUICK=1` for a
//! seconds-long smoke run (CI) — same 100k top level, fewer trials.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use ode_bench::workload;
use ode_sched::{SchedConfig, Scheduler};

const LEVELS: [usize; 4] = [0, 1, 1_000, 100_000];

struct Config {
    commits: usize,
    warmup: usize,
    quick: bool,
}

impl Config {
    fn from_env() -> Self {
        let quick = std::env::var("ODE_BENCH_QUICK").is_ok_and(|v| v != "0");
        if quick {
            Config {
                commits: 200,
                warmup: 20,
                quick,
            }
        } else {
            Config {
                commits: 800,
                warmup: 50,
                quick,
            }
        }
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let cfg = Config::from_env();
    let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    eprintln!(
        "f13: {} interleaved commits per level, levels {:?}, host parallelism {}",
        cfg.commits, LEVELS, parallelism
    );

    // One database per level, all built before any measurement so setup
    // cost (100k activations) stays out of the timed region. The armed
    // triggers sit on *other* objects with a never-true condition; the
    // measured commit writes one unencumbered object.
    let arms: Vec<_> = LEVELS
        .iter()
        .map(|&armed| {
            let (db, oid) = workload::triggered_db(0, armed);
            let db = Arc::new(db);
            let sched = Scheduler::attach(Arc::clone(&db), SchedConfig::default());
            (db, oid, sched)
        })
        .collect();

    let mut v = 0i64;
    for (db, oid, _) in &arms {
        for _ in 0..cfg.warmup {
            v += 1;
            db.transaction(|tx| tx.set(*oid, "quantity", 1_000 + v % 100))
                .expect("warmup commit");
        }
    }

    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(cfg.commits); LEVELS.len()];
    for _ in 0..cfg.commits {
        for (i, (db, oid, _)) in arms.iter().enumerate() {
            v += 1;
            let t = Instant::now();
            db.transaction(|tx| tx.set(*oid, "quantity", 1_000 + v % 100))
                .expect("timed commit");
            samples[i].push(t.elapsed().as_secs_f64() * 1e6);
        }
    }

    let p50s: Vec<f64> = samples.iter_mut().map(|s| median(s)).collect();
    for (&armed, &p50) in LEVELS.iter().zip(&p50s) {
        eprintln!("f13: {armed:>7} armed  commit p50 {p50:>8.2} µs");
    }
    let ratio = p50s[LEVELS.len() - 1] / p50s[0];
    eprintln!(
        "f13: {} armed vs baseline ratio {ratio:.3}x",
        LEVELS[LEVELS.len() - 1]
    );

    for (db, _, sched) in &arms {
        sched.wait_idle(std::time::Duration::from_secs(5));
        sched.detach();
        assert!(
            db.pending_events().is_empty(),
            "non-matching triggers must never enqueue"
        );
    }

    let credible = parallelism >= 2;
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"figure\": \"f13_trigger_scale\",");
    let _ = writeln!(json, "  \"commits_per_level\": {},", cfg.commits);
    let _ = writeln!(json, "  \"quick\": {},", cfg.quick);
    let _ = writeln!(json, "  \"host_parallelism\": {parallelism},");
    let _ = writeln!(json, "  \"credible\": {credible},");
    json.push_str("  \"levels\": [\n");
    for (i, (&armed, &p50)) in LEVELS.iter().zip(&p50s).enumerate() {
        let _ = writeln!(
            json,
            "    {{\"armed\": {armed}, \"commit_p50_us\": {p50:.2}}}{}",
            if i + 1 < LEVELS.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"ratio_100k_vs_baseline\": {ratio:.4}");
    json.push_str("}\n");

    let out = std::env::var("ODE_BENCH_OUT").map_or_else(
        |_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_f13.json")
        },
        PathBuf::from,
    );
    std::fs::write(&out, &json).expect("write BENCH_f13.json");
    eprintln!("f13: wrote {}", out.display());

    assert!(
        ratio <= 1.10,
        "100k armed non-matching triggers cost {:.1}% on commit p50 (budget: 10%)",
        (ratio - 1.0) * 100.0
    );
    eprintln!(
        "f13: armed-trigger commit overhead {:.1}% (≤10% bar) — PASS",
        (ratio - 1.0) * 100.0
    );
}
