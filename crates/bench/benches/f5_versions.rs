//! Figure F5 — version operations vs. chain depth (§4).
//!
//! * **generic_deref** — dereference an [`Oid`]: anchor → current version
//!   record. Expected O(1) in chain depth (the design motivation for the
//!   anchor's version table).
//! * **specific_deref** — dereference a pinned [`VersionRef`]: anchor
//!   table lookup + one record read. Expected ~O(1) (linear table scan of
//!   a small in-anchor table).
//! * **newversion** — cost of creating one more version at depth d (the
//!   anchor grows with d, so a mild linear component is expected).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ode_bench::workload;
use ode_core::prelude::*;

fn short() -> Criterion {
    Criterion::default()
        .without_plots()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f5_versions");
    for &chain in &[1usize, 16, 128, 512] {
        let (db, oid) = workload::versioned_db(chain);
        g.bench_with_input(BenchmarkId::new("generic_deref", chain), &(), |b, _| {
            b.iter(|| {
                db.transaction(|tx| Ok(tx.read(oid)?.fields[1].clone()))
                    .unwrap()
            })
        });
        let mid = VersionRef {
            oid,
            version: (chain / 2) as u32,
        };
        g.bench_with_input(BenchmarkId::new("specific_deref", chain), &(), |b, _| {
            b.iter(|| {
                db.transaction(|tx| Ok(tx.read_version(mid)?.fields[1].clone()))
                    .unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("newversion", chain), &(), |b, _| {
            b.iter(|| {
                // Create-and-abort keeps the chain at its sweep depth.
                let mut tx = db.begin();
                tx.newversion(oid).unwrap();
                tx.abort();
            })
        });
        g.bench_with_input(BenchmarkId::new("version_list", chain), &(), |b, _| {
            b.iter(|| db.transaction(|tx| tx.versions(oid)).unwrap().len())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
