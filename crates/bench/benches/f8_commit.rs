//! Figure F8 — commit / WAL throughput on the durable store (substrate).
//!
//! Sweeps objects-per-transaction on a file-backed database, with fsync on
//! and off. Expected shape: per-object cost falls sharply as the batch
//! grows (the WAL fsync amortizes); with fsync off the curve flattens at
//! the pure CPU/copy cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ode_bench::workload;
use ode_core::prelude::*;
use ode_storage::filestore::FileStoreOptions;

fn short() -> Criterion {
    Criterion::default()
        .without_plots()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(1500))
}

fn file_db(tag: &str, sync: bool) -> Database {
    let dir = workload::temp_dir(tag);
    let db = Database::open_with(
        &dir,
        FileStoreOptions {
            sync_commits: sync,
            ..FileStoreOptions::default()
        },
        DbConfig::default(),
    )
    .unwrap();
    workload::define_inventory(&db);
    db
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f8_commit");
    for &sync in &[true, false] {
        let mode = if sync { "fsync" } else { "nosync" };
        for &batch in &[1usize, 10, 100, 1000] {
            let db = file_db(&format!("f8-{mode}-{batch}"), sync);
            let mut serial = 0usize;
            g.throughput(Throughput::Elements(batch as u64));
            g.bench_with_input(
                BenchmarkId::new(format!("commit_{mode}"), batch),
                &(),
                |b, _| {
                    b.iter(|| {
                        db.transaction(|tx| {
                            for _ in 0..batch {
                                serial += 1;
                                tx.pnew(
                                    "stockitem",
                                    &[
                                        ("name", Value::from(format!("i{serial}"))),
                                        ("quantity", Value::Int(serial as i64)),
                                    ],
                                )?;
                            }
                            Ok(())
                        })
                        .unwrap()
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
