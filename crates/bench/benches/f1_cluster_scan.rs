//! Figure F1 — cluster scan throughput (§3.1).
//!
//! Sweeps the extent size and compares deep (hierarchy) vs. shallow
//! iteration over the university schema. Expected shape: cost linear in
//! the number of objects visited; deep iteration over 4 equally-sized
//! clusters ≈ 4× the shallow cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ode_bench::workload;

fn short() -> Criterion {
    Criterion::default()
        .without_plots()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f1_cluster_scan");
    for &n in &[1_000usize, 10_000, 50_000] {
        let (db, _) = workload::inventory_db(n, false);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            b.iter(|| {
                db.transaction(|tx| {
                    let mut total = 0i64;
                    tx.forall("stockitem")?.run(|tx, oid| {
                        total += tx.get(oid, "quantity")?.as_int()?;
                        Ok(())
                    })?;
                    Ok(total)
                })
                .unwrap()
            })
        });
    }
    // Deep vs shallow over the hierarchy (same per-class size).
    let db = workload::university_db(5_000);
    g.bench_function("deep_20k_person_hierarchy", |b| {
        b.iter(|| db.transaction(|tx| tx.forall("person")?.count()).unwrap())
    });
    g.bench_function("shallow_5k_person_only", |b| {
        b.iter(|| {
            db.transaction(|tx| tx.forall("person")?.shallow().count())
                .unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
