//! Figure F4 — fixpoint (recursive) query evaluation strategies (§3.2).
//!
//! Transitive closure of a bill-of-materials chain, four ways:
//!
//! * **ode_cluster_fixpoint** — the paper's facility: iterate a result
//!   cluster that grows during iteration,
//! * **ode_set_fixpoint** — §3.2 over a set-valued field,
//! * **semi_naive** — classic delta-driven evaluation in plain Rust over
//!   the same edges (each edge considered once per delta round),
//! * **naive** — re-derive the full closure from scratch each round until
//!   it stops growing (Aho–Ullman's least-fixpoint, evaluated naively).
//!
//! Expected shape: semi-naive < ode set fixpoint < ode cluster fixpoint ≪
//! naive, with naive diverging as depth grows (it repeats all work each
//! round).

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ode_bench::workload;
use ode_core::prelude::*;

fn short() -> Criterion {
    Criterion::default()
        .without_plots()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(1200))
}

fn ode_cluster_fixpoint(db: &Database, root: &str) -> usize {
    let mut count = 0usize;
    let mut tx = db.begin();
    tx.pnew("reached", &[("part", Value::from(root))]).unwrap();
    tx.forall("reached")
        .unwrap()
        .fixpoint()
        .run(|tx, row| {
            count += 1;
            let part = tx.get(row, "part")?.as_str()?.to_string();
            let children = tx
                .forall("usage")?
                .suchthat(&format!("parent == \"{part}\""))?
                .collect_values("child")?;
            for child in children {
                let c = child.as_str()?.to_string();
                if tx
                    .forall("reached")?
                    .suchthat(&format!("part == \"{c}\""))?
                    .count()?
                    == 0
                {
                    tx.pnew("reached", &[("part", child)])?;
                }
            }
            Ok(())
        })
        .unwrap();
    tx.abort(); // leave the database unchanged for the next iteration
    count
}

fn ode_set_fixpoint(db: &Database, root: &str) -> usize {
    let mut tx = db.begin();
    let wl = tx.pnew("worklist", &[]).unwrap();
    tx.set_insert(wl, "parts", root).unwrap();
    let visited = tx
        .iterate_set(wl, "parts", |tx, v| {
            let part = v.as_str()?.to_string();
            let children = tx
                .forall("usage")?
                .suchthat(&format!("parent == \"{part}\""))?
                .collect_values("child")?;
            for c in children {
                tx.set_insert(wl, "parts", c)?;
            }
            Ok(())
        })
        .unwrap();
    tx.abort();
    visited
}

fn semi_naive(edges: &[(String, String)], root: &str) -> usize {
    let mut closure: BTreeSet<&str> = BTreeSet::new();
    let mut delta: BTreeSet<&str> = [root].into();
    while !delta.is_empty() {
        closure.extend(delta.iter().copied());
        let mut next = BTreeSet::new();
        for (p, c) in edges {
            if delta.contains(p.as_str()) && !closure.contains(c.as_str()) {
                next.insert(c.as_str());
            }
        }
        delta = next;
    }
    closure.len()
}

fn naive(edges: &[(String, String)], root: &str) -> usize {
    // Re-derive from scratch each round: closure' = {root} ∪ step(closure).
    let mut closure: BTreeSet<&str> = [root].into();
    loop {
        let mut next: BTreeSet<&str> = [root].into();
        for (p, c) in edges {
            if closure.contains(p.as_str()) {
                next.insert(c.as_str());
            }
        }
        if next == closure {
            return closure.len();
        }
        closure = next;
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f4_fixpoint");
    for &(depth, fanout) in &[(8usize, 8usize), (32, 8), (64, 16)] {
        let tag = format!("d{depth}_f{fanout}");
        let (db, root, parts) = workload::bom_db(depth, fanout);
        let edges = workload::bom_edges(&db);

        g.bench_with_input(
            BenchmarkId::new("ode_cluster_fixpoint", &tag),
            &(),
            |b, _| {
                b.iter(|| {
                    let n = ode_cluster_fixpoint(&db, &root);
                    assert_eq!(n, parts);
                    n
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("ode_set_fixpoint", &tag), &(), |b, _| {
            b.iter(|| {
                let n = ode_set_fixpoint(&db, &root);
                assert_eq!(n, parts);
                n
            })
        });
        g.bench_with_input(BenchmarkId::new("semi_naive", &tag), &(), |b, _| {
            b.iter(|| {
                let n = semi_naive(&edges, &root);
                assert_eq!(n, parts);
                n
            })
        });
        g.bench_with_input(BenchmarkId::new("naive", &tag), &(), |b, _| {
            b.iter(|| {
                let n = naive(&edges, &root);
                assert_eq!(n, parts);
                n
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
