//! Figure F7 — trigger-condition evaluation scaling (§6).
//!
//! §6 says conditions are "conceptually evaluated at the end of each
//! transaction". A naive implementation pays for *every* activation in the
//! database on every commit; this engine only evaluates activations whose
//! subject was written. Two sweeps demonstrate it:
//!
//! * **hot sweep** — K activations on the written object (cost must grow
//!   with K: those conditions genuinely need evaluation),
//! * **cold sweep** — K activations on *other* objects (cost must stay
//!   flat: the paper's semantics without the naive price).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ode_bench::workload;

fn short() -> Criterion {
    Criterion::default()
        .without_plots()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f7_triggers");
    // Hot: activations on the object we write.
    for &hot in &[0usize, 10, 100, 1_000] {
        let (db, oid) = workload::triggered_db(hot, 0);
        let mut v = 0i64;
        g.bench_with_input(BenchmarkId::new("hot_activations", hot), &(), |b, _| {
            b.iter(|| {
                v += 1;
                db.transaction(|tx| tx.set(oid, "quantity", 1_000 + v % 100))
                    .unwrap()
            })
        });
    }
    // Cold: activations elsewhere in the database.
    for &cold in &[0usize, 1_000, 10_000] {
        let (db, oid) = workload::triggered_db(1, cold);
        let mut v = 0i64;
        g.bench_with_input(BenchmarkId::new("cold_activations", cold), &(), |b, _| {
            b.iter(|| {
                v += 1;
                db.transaction(|tx| tx.set(oid, "quantity", 1_000 + v % 100))
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
