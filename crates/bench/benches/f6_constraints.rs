//! Figure F6 — constraint-checking overhead (§5).
//!
//! One field update committed, with 0/1/2/4/8 constraints declared on the
//! class (each a two-comparison conjunction). Constraints are checked
//! eagerly after the update *and* at commit, so expected shape: cost
//! linear in the number of constraints, with a measurable per-constraint
//! expression-evaluation cost on top of the constant transaction cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ode_bench::workload;

fn short() -> Criterion {
    Criterion::default()
        .without_plots()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f6_constraints");
    for &n in &[0usize, 1, 2, 4, 8] {
        let (db, oid) = workload::constrained_db(n);
        let mut next = 1i64;
        g.bench_with_input(BenchmarkId::new("update_commit", n), &(), |b, _| {
            b.iter(|| {
                next += 1;
                db.transaction(|tx| tx.set(oid, "quantity", next % 1000))
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
