//! Figure F9 — buffer-pool behaviour on the durable store (substrate).
//!
//! One dataset (~20k objects, a few hundred pages), scanned with a pool
//! larger than the data (everything stays hot after the first pass) and
//! with a pool far smaller than the data (every scan evicts and re-reads —
//! the classic sequential-flooding worst case for LRU). Hit/miss counters
//! from the pager accompany the wall-clock shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ode_bench::workload;
use ode_core::prelude::*;
use ode_storage::filestore::FileStoreOptions;

fn short() -> Criterion {
    Criterion::default()
        .without_plots()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
}

const N: usize = 20_000;

fn file_db(tag: &str, pool_pages: usize) -> Database {
    let dir = workload::temp_dir(tag);
    let db = Database::open_with(
        &dir,
        FileStoreOptions {
            pool_pages,
            sync_commits: false,
            ..FileStoreOptions::default()
        },
        DbConfig::default(),
    )
    .unwrap();
    workload::define_inventory(&db);
    workload::fill_inventory(&db, N);
    db.checkpoint().unwrap();
    db
}

fn scan(db: &Database) -> usize {
    db.transaction(|tx| tx.forall("stockitem")?.count())
        .unwrap()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f9_bufpool");
    for &(tag, pool) in &[("hot_large_pool", 4096usize), ("thrash_small_pool", 16)] {
        let db = file_db(tag, pool);
        scan(&db); // warm what can be warmed
        db.reset_store_stats();
        g.bench_with_input(BenchmarkId::new(tag, pool), &(), |b, _| {
            b.iter(|| scan(&db))
        });
        let stats = db.store_stats();
        let total = stats.pager.hits + stats.pager.misses;
        if total > 0 {
            eprintln!(
                "f9 {tag}: pool={pool} pages, hit-rate {:.1}% ({} hits / {} misses, {} evictions)",
                100.0 * stats.pager.hits as f64 / total as f64,
                stats.pager.hits,
                stats.pager.misses,
                stats.pager.evictions,
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
