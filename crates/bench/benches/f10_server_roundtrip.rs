//! Figure F10b — serving-layer overhead: the same statement executed
//! in-process vs. through `ode-server` over a loopback socket.
//!
//! Two shapes bracket the range: an indexed point query (engine time is
//! tiny, so the measurement is almost pure wire + session overhead) and a
//! full extent scan (engine time dominates, so the wire cost should
//! vanish in the noise). Both wire statements return one row, keeping
//! response formatting out of the comparison.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use ode_bench::workload;
use ode_server::client::{Client, RemoteLine};
use ode_server::{Server, ServerConfig};

fn short() -> Criterion {
    Criterion::default()
        .without_plots()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900))
}

const N: usize = 20_000;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f10_server_roundtrip");
    let (db, _) = workload::inventory_db(N, true);
    let db = Arc::new(db);
    let handle = Server::bind(db, ServerConfig::default(), "127.0.0.1:0").expect("bind");
    let db = handle.database();
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Pick a value that exists so both paths do real work.
    let point = "quantity == 7";
    let scan = r#"name == "part-0000042""#;

    g.bench_function("point/in_process", |b| {
        b.iter(|| {
            db.transaction(|tx| tx.forall("stockitem")?.suchthat(point)?.count())
                .unwrap()
        })
    });
    g.bench_function("point/wire", |b| {
        b.iter(|| {
            match client
                .line(&format!("forall s in stockitem suchthat ({point})"))
                .unwrap()
            {
                RemoteLine::Output(out) => out.len(),
                other => panic!("unexpected {other:?}"),
            }
        })
    });
    g.bench_function("scan/in_process", |b| {
        b.iter(|| {
            db.transaction(|tx| tx.forall("stockitem")?.suchthat(scan)?.count())
                .unwrap()
        })
    });
    g.bench_function("scan/wire", |b| {
        b.iter(|| {
            match client
                .line(&format!("forall s in stockitem suchthat ({scan})"))
                .unwrap()
            {
                RemoteLine::Output(out) => out.len(),
                other => panic!("unexpected {other:?}"),
            }
        })
    });

    g.finish();
    client.bye().expect("bye");
    let report = handle.shutdown();
    assert!(report.drained, "{report:?}");
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
