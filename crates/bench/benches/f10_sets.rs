//! Figure F10 — set operations and insert-during-iteration (§2.6, §3.2).
//!
//! * insert/contains/remove cost vs. set cardinality (the engine's sets
//!   are insertion-ordered with linear membership — adequate for the
//!   paper's set sizes, and this figure documents where it stops being
//!   adequate),
//! * `iterate_set` walking a set that grows during iteration vs. a plain
//!   walk of a pre-built set of the same final size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ode_core::prelude::*;
use ode_model::SetValue;

fn short() -> Criterion {
    Criterion::default()
        .without_plots()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

fn holder_db() -> (Database, Oid) {
    let db = Database::in_memory();
    db.define_class(ClassBuilder::new("holder").field_default(
        "nums",
        Type::Set(Box::new(Type::Int)),
        Value::Set(SetValue::new()),
    ))
    .unwrap();
    db.create_cluster("holder").unwrap();
    let oid = db.transaction(|tx| tx.pnew("holder", &[])).unwrap();
    (db, oid)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f10_sets");
    // Value-level set operations.
    for &n in &[100usize, 1_000, 5_000] {
        let set: SetValue = (0..n as i64).map(Value::Int).collect();
        g.bench_with_input(BenchmarkId::new("contains_hit", n), &(), |b, _| {
            b.iter(|| set.contains(&Value::Int((n / 2) as i64)))
        });
        g.bench_with_input(BenchmarkId::new("contains_miss", n), &(), |b, _| {
            b.iter(|| set.contains(&Value::Int(-1)))
        });
        g.bench_with_input(BenchmarkId::new("insert_dup", n), &(), |b, _| {
            b.iter(|| {
                let mut s = set.clone();
                s.insert(Value::Int(0))
            })
        });
        g.bench_with_input(BenchmarkId::new("union", n), &(), |b, _| {
            b.iter(|| set.union(&set).len())
        });
    }
    // Engine-level: growth during iteration vs plain walk.
    for &n in &[200usize, 600] {
        let (db, oid) = holder_db();
        g.bench_with_input(BenchmarkId::new("grow_during_iteration", n), &(), |b, _| {
            b.iter(|| {
                let mut tx = db.begin();
                tx.set_insert(oid, "nums", 0i64).unwrap();
                let visited = tx
                    .iterate_set(oid, "nums", |tx, v| {
                        let k = v.as_int()?;
                        if (k as usize) < n - 1 {
                            tx.set_insert(oid, "nums", k + 1)?;
                        }
                        Ok(())
                    })
                    .unwrap();
                tx.abort();
                assert_eq!(visited, n);
            })
        });
        let (db, oid) = holder_db();
        db.transaction(|tx| {
            for i in 0..n as i64 {
                tx.set_insert(oid, "nums", i)?;
            }
            Ok(())
        })
        .unwrap();
        g.bench_with_input(BenchmarkId::new("plain_walk", n), &(), |b, _| {
            b.iter(|| {
                let mut tx = db.begin();
                let visited = tx.iterate_set(oid, "nums", |_tx, _v| Ok(())).unwrap();
                tx.abort();
                assert_eq!(visited, n);
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
