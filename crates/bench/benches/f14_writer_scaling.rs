//! Figure F14 — writer scaling under optimistic multi-writer commit.
//!
//! PR 8 replaced the single-writer `txn_gate` with optimistic
//! validation plus WAL group commit (DESIGN.md §13). This figure
//! measures what that bought writers: a durable (fsync-on-commit)
//! store is hammered by 1, 2, 4, then 8 writer threads in two modes —
//!
//! * **disjoint-key**: each thread read-modify-writes its own counter
//!   object. No read-set overlap, so no conflicts; the cost that used
//!   to serialize writers is now only the shared fsync, which group
//!   commit amortizes across the cohort.
//! * **hot-key**: every thread increments ONE shared counter. Maximum
//!   conflict pressure; losers abort with `WriteConflict` and the
//!   `Database::transaction` retry loop re-runs them. Throughput here
//!   bounds the validation + retry overhead, and the final counter
//!   value proves no update was lost.
//! * **disjoint-range**: every thread updates its own *predicate
//!   range* of one shared, unindexed cluster via OQL — the shape
//!   DESIGN.md §14's footprint-driven validation exists for. Before
//!   ranged scan entries, every overlapping pair conflicted on the
//!   whole-heap scan promise; now validation intersects the proven
//!   key ranges and admits them (`narrowed` counts those admissions).
//!
//! Per cell we report aggregate committed txns/sec, conflicts, retry
//! count, narrowed validations, fsyncs-per-commit (group-commit
//! effectiveness), and the mean cohort size. Output: a table on stderr
//! and `BENCH_f14.json` at the repo root (override with
//! `ODE_BENCH_OUT`); when a previous `BENCH_f14.json` exists, each row
//! also records `prev_txn_per_sec`/`delta_pct` against it.
//! `ODE_BENCH_QUICK=1` shrinks the windows for CI.
//!
//! Credibility: writer *scaling* measured on one hardware thread is a
//! time-slicing artifact, so such runs are flagged `credible: false`
//! and the scaling assertion is gated on host parallelism — but the
//! lost-update correctness assertion always runs.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use ode_bench::workload;
use ode_core::prelude::*;
use ode_storage::filestore::FileStoreOptions;

const THREAD_COUNTS: &[usize] = &[1, 2, 4, 8];

struct Config {
    window: Duration,
    quick: bool,
}

impl Config {
    fn from_env() -> Self {
        let quick = std::env::var("ODE_BENCH_QUICK").is_ok_and(|v| v != "0");
        Config {
            window: if quick {
                Duration::from_millis(200)
            } else {
                Duration::from_millis(1000)
            },
            quick,
        }
    }
}

struct Row {
    mode: &'static str,
    threads: usize,
    ops_s: f64,
    conflicts: u64,
    retries: u64,
    narrowed: u64,
    fsyncs_per_commit: f64,
    mean_cohort: f64,
}

/// Fresh durable database with `counters` counter objects, fsync on
/// commit (the configuration group commit exists for).
fn writer_db(tag: &str, counters: usize) -> (Database, Vec<Oid>) {
    let dir = workload::temp_dir(tag);
    let db = Database::open_with(
        &dir,
        FileStoreOptions {
            sync_commits: true,
            ..FileStoreOptions::default()
        },
        DbConfig::default(),
    )
    .expect("open");
    db.define_class(ClassBuilder::new("counter").field_default("n", Type::Int, 0))
        .expect("schema");
    db.create_cluster("counter").expect("cluster");
    let oids = db
        .transaction(|tx| (0..counters).map(|_| tx.pnew("counter", &[])).collect())
        .expect("seed counters");
    db.checkpoint().expect("checkpoint");
    (db, oids)
}

/// Run `threads` writers for the window; thread `t` increments
/// `oids[t % oids.len()]`. Returns (committed increments, elapsed).
fn run(db: &Database, oids: &[Oid], threads: usize, window: Duration) -> (u64, Duration) {
    let start = Arc::new(Barrier::new(threads + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let mut elapsed = Duration::ZERO;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let start = Arc::clone(&start);
            let stop = Arc::clone(&stop);
            let total = Arc::clone(&total);
            let oid = oids[t % oids.len()];
            scope.spawn(move || {
                start.wait();
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Like a wire client: WriteConflict is retryable, so a
                    // writer that exhausts the engine's bounded retry
                    // budget backs off and resubmits.
                    match db.transaction(|tx| {
                        let n = match tx.get(oid, "n")? {
                            Value::Int(n) => n,
                            other => panic!("expected int, got {other:?}"),
                        };
                        tx.set(oid, "n", n + 1)
                    }) {
                        Ok(()) => ops += 1,
                        Err(e) if e.is_unavailable() => {
                            std::thread::sleep(Duration::from_micros(500));
                        }
                        Err(e) => panic!("increment: {e}"),
                    }
                }
                total.fetch_add(ops, Ordering::Relaxed);
            });
        }
        start.wait();
        let t0 = Instant::now();
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        // scope joins all writers here
        elapsed = t0.elapsed();
    });
    (total.load(Ordering::Relaxed), elapsed)
}

/// Width of each thread's private key band in `disjoint_range` mode,
/// and rows seeded per band. No index on `k`: predicates take the
/// extent-scan path, so only the analyzer-proven ranges keep the
/// writers from promising the whole heap to the validator.
const RANGE_SPAN: i64 = 100;
const ROWS_PER_RANGE: i64 = 4;

/// Fresh durable database with one shared `item` cluster holding
/// `ROWS_PER_RANGE` rows per thread band, fsync on commit.
fn range_db(tag: &str, threads: usize) -> Database {
    let dir = workload::temp_dir(tag);
    let db = Database::open_with(
        &dir,
        FileStoreOptions {
            sync_commits: true,
            ..FileStoreOptions::default()
        },
        DbConfig::default(),
    )
    .expect("open");
    db.define_class(
        ClassBuilder::new("item")
            .field_default("k", Type::Int, 0)
            .field_default("n", Type::Int, 0),
    )
    .expect("schema");
    db.create_cluster("item").expect("cluster");
    db.transaction(|tx| {
        for t in 0..threads as i64 {
            for i in 0..ROWS_PER_RANGE {
                tx.execute(&format!("pnew item (k = {})", t * RANGE_SPAN + i))?;
            }
        }
        Ok(())
    })
    .expect("seed items");
    db.checkpoint().expect("checkpoint");
    db
}

/// Run `threads` writers for the window; thread `t` repeatedly bumps
/// every row in its own key band through the OQL scan path. Returns
/// (committed updates, elapsed).
fn run_range(db: &Database, threads: usize, window: Duration) -> (u64, Duration) {
    let start = Arc::new(Barrier::new(threads + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let mut elapsed = Duration::ZERO;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let start = Arc::clone(&start);
            let stop = Arc::clone(&stop);
            let total = Arc::clone(&total);
            let (lo, hi) = (t as i64 * RANGE_SPAN, (t as i64 + 1) * RANGE_SPAN);
            let stmt = format!("update s in item suchthat (k >= {lo} && k < {hi}) set n = n + 1");
            scope.spawn(move || {
                start.wait();
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match db.transaction(|tx| tx.execute(&stmt).map(|_| ())) {
                        Ok(()) => ops += 1,
                        Err(e) if e.is_unavailable() => {
                            std::thread::sleep(Duration::from_micros(500));
                        }
                        Err(e) => panic!("range update: {e}"),
                    }
                }
                total.fetch_add(ops, Ordering::Relaxed);
            });
        }
        start.wait();
        let t0 = Instant::now();
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        elapsed = t0.elapsed();
    });
    (total.load(Ordering::Relaxed), elapsed)
}

fn counter_value(db: &Database, oid: Oid) -> i64 {
    db.read(|rtx| match rtx.get(oid, "n")? {
        Value::Int(n) => Ok(n),
        other => panic!("expected int, got {other:?}"),
    })
    .expect("read counter")
}

fn cell(mode: &'static str, threads: usize, window: Duration) -> Row {
    if mode == "disjoint_range" {
        return range_cell(threads, window);
    }
    let counters = if mode == "hot_key" { 1 } else { threads };
    let (db, oids) = writer_db(&format!("f14-{mode}-{threads}"), counters);
    let before = db.telemetry();
    let (ops, elapsed) = run(&db, &oids, threads, window);
    let d = db.telemetry().delta(&before);

    // No increment may be lost: the counters must sum to exactly the
    // number of committed increments, whatever the conflict rate was.
    let sum: i64 = oids.iter().map(|&o| counter_value(&db, o)).sum();
    assert_eq!(
        sum as u64, ops,
        "{mode}@{threads}: lost updates (counters {sum}, committed {ops})"
    );

    let commits = d.storage.commits.max(1);
    Row {
        mode,
        threads,
        ops_s: ops as f64 / elapsed.as_secs_f64(),
        conflicts: d.txn.conflicts,
        retries: d.txn.commit_retries,
        narrowed: d.txn.narrowed_validations,
        fsyncs_per_commit: d.storage.wal_fsyncs as f64 / commits as f64,
        mean_cohort: if d.storage.commit_groups == 0 {
            1.0
        } else {
            d.storage.commit_group_members as f64 / d.storage.commit_groups as f64
        },
    }
}

fn range_cell(threads: usize, window: Duration) -> Row {
    let db = range_db(&format!("f14-disjoint_range-{threads}"), threads);
    let before = db.telemetry();
    let (ops, elapsed) = run_range(&db, threads, window);
    let d = db.telemetry().delta(&before);

    // Every committed update bumped each row in its band exactly once:
    // the `n` values must sum to committed-updates × rows-per-band.
    let sum: i64 = db
        .transaction(|tx| {
            let rows = match tx.execute("forall s in item")? {
                ode_core::oql::ExecResult::Rows(rows) => rows.rows,
                other => panic!("unexpected result: {other:?}"),
            };
            let mut sum = 0i64;
            for row in rows {
                match tx.get(row[0], "n")? {
                    Value::Int(n) => sum += n,
                    other => panic!("expected int, got {other:?}"),
                }
            }
            Ok(sum)
        })
        .expect("sum items");
    assert_eq!(
        sum as u64,
        ops * ROWS_PER_RANGE as u64,
        "disjoint_range@{threads}: lost updates (sum {sum}, committed {ops})"
    );

    let commits = d.storage.commits.max(1);
    Row {
        mode: "disjoint_range",
        threads,
        ops_s: ops as f64 / elapsed.as_secs_f64(),
        conflicts: d.txn.conflicts,
        retries: d.txn.commit_retries,
        narrowed: d.txn.narrowed_validations,
        fsyncs_per_commit: d.storage.wal_fsyncs as f64 / commits as f64,
        mean_cohort: if d.storage.commit_groups == 0 {
            1.0
        } else {
            d.storage.commit_group_members as f64 / d.storage.commit_groups as f64
        },
    }
}

fn main() {
    let cfg = Config::from_env();
    let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    eprintln!(
        "f14: {:?} window per cell, host parallelism {}",
        cfg.window, parallelism
    );

    let mut rows = Vec::new();
    for &mode in &["disjoint_key", "hot_key", "disjoint_range"] {
        for &threads in THREAD_COUNTS {
            let r = cell(mode, threads, cfg.window);
            eprintln!(
                "f14: {:<14} threads={:<2} {:>8.0} txn/s  conflicts={:<6} retries={:<6} narrowed={:<6} fsync/commit={:.2} cohort={:.2}",
                r.mode, r.threads, r.ops_s, r.conflicts, r.retries, r.narrowed, r.fsyncs_per_commit, r.mean_cohort
            );
            rows.push(r);
        }
    }

    let base = |mode: &str| {
        rows.iter()
            .find(|r| r.mode == mode && r.threads == 1)
            .expect("1-thread row")
            .ops_s
    };
    let out = std::env::var("ODE_BENCH_OUT").map_or_else(
        |_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_f14.json")
        },
        PathBuf::from,
    );
    // Rates from the last committed run, so each row can record its
    // delta — the regression ledger the figure exists for.
    let prev = prev_rates(&out);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"figure\": \"f14_writer_scaling\",");
    let _ = writeln!(json, "  \"window_ms\": {},", cfg.window.as_millis());
    let _ = writeln!(json, "  \"quick\": {},", cfg.quick);
    let _ = writeln!(json, "  \"host_parallelism\": {parallelism},");
    let _ = writeln!(json, "  \"credible\": {},", parallelism >= 2);
    let _ = writeln!(json, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let delta = prev
            .iter()
            .find(|(m, t, _)| m == r.mode && *t == r.threads)
            .map_or(String::new(), |(_, _, old)| {
                format!(
                    ", \"prev_txn_per_sec\": {old:.1}, \"delta_pct\": {:.1}",
                    (r.ops_s - old) / old * 100.0
                )
            });
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"threads\": {}, \"txn_per_sec\": {:.1}, \"speedup\": {:.2}, \"conflicts\": {}, \"retries\": {}, \"narrowed\": {}, \"fsyncs_per_commit\": {:.3}, \"mean_cohort\": {:.2}{delta}}}{comma}",
            r.mode,
            r.threads,
            r.ops_s,
            r.ops_s / base(r.mode),
            r.conflicts,
            r.retries,
            r.narrowed,
            r.fsyncs_per_commit,
            r.mean_cohort,
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out, &json).expect("write BENCH_f14.json");
    eprintln!("f14: wrote {}", out.display());

    // Scaling bar, gated on real parallelism: with ≥4 cores, 4 disjoint
    // writers sharing fsyncs must beat one writer paying a full fsync
    // per commit.
    let at = |mode: &str, n: usize| {
        rows.iter()
            .find(|r| r.mode == mode && r.threads == n)
            .expect("row")
            .ops_s
    };
    let speedup = at("disjoint_key", 4) / base("disjoint_key");
    if parallelism >= 4 {
        assert!(
            speedup >= 1.5,
            "disjoint writers failed to scale: 4-thread throughput is only {speedup:.2}x of 1-thread"
        );
        eprintln!("f14: 4-thread disjoint-key speedup {speedup:.2}x (>= 1.5x bar) — PASS");
    } else {
        eprintln!(
            "f14: host has {parallelism} core(s); ≥1.5x@4-threads assertion skipped (measured {speedup:.2}x)"
        );
        eprintln!("f14: NOT CREDIBLE — single-core scaling numbers are time-slicing artifacts");
    }
    // Group commit must actually share fsyncs once several writers
    // commit concurrently — even time-sliced on one core the cohort
    // window overlaps. Gate on 2 threads existing at all.
    let hot8 = rows
        .iter()
        .find(|r| r.mode == "hot_key" && r.threads == 8)
        .expect("hot_key@8");
    if hot8.conflicts == 0 {
        eprintln!("f14: note: hot_key@8 saw no conflicts (scheduler never overlapped validations)");
    }

    // Disjoint-range writers are the narrowed-validation headline: with
    // real parallelism, validations overlap and the range intersection
    // must be doing the admitting (narrowed > 0) while keeping the
    // conflict rate far below hot-key levels.
    let range8 = rows
        .iter()
        .find(|r| r.mode == "disjoint_range" && r.threads == 8)
        .expect("disjoint_range@8");
    if parallelism >= 2 {
        assert!(
            range8.narrowed > 0,
            "disjoint_range@8 never exercised narrowed validation"
        );
        eprintln!(
            "f14: disjoint_range@8 narrowed {} validations with {} conflicts — PASS",
            range8.narrowed, range8.conflicts
        );
    } else {
        eprintln!(
            "f14: disjoint_range@8 narrowed={} conflicts={} (assertion skipped on 1 core)",
            range8.narrowed, range8.conflicts
        );
    }
}

/// `(mode, threads, txn_per_sec)` triples from a previous run's JSON.
/// The file is our own line-per-row output, so a plain string scan is
/// enough — no JSON parser in the bench crate's dependency set.
fn prev_rates(path: &std::path::Path) -> Vec<(String, usize, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let field = |line: &str, key: &str| -> Option<String> {
        let rest = &line[line.find(key)? + key.len()..];
        let end = rest.find([',', '}', '"']).unwrap_or(rest.len());
        Some(rest[..end].trim().to_string())
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let (Some(mode), Some(threads), Some(rate)) = (
            field(line, "\"mode\": \""),
            field(line, "\"threads\": "),
            field(line, "\"txn_per_sec\": "),
        ) else {
            continue;
        };
        if let (Ok(threads), Ok(rate)) = (threads.parse(), rate.parse()) {
            out.push((mode, threads, rate));
        }
    }
    out
}
