//! Figure F2 — selection: full scan vs. secondary index (§3.1's "query
//! optimization" hook).
//!
//! `quantity` is uniform in `0..n`, so `quantity < k` has selectivity
//! `k/n`. Expected shape: the index wins by orders of magnitude at low
//! selectivity; the advantage shrinks as selectivity approaches 1, where
//! both plans touch every object.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ode_bench::workload;

fn short() -> Criterion {
    Criterion::default()
        .without_plots()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900))
}

const N: usize = 20_000;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f2_selection");
    let (scan_db, _) = workload::inventory_db(N, false);
    let (ix_db, _) = workload::inventory_db(N, true);
    for &permille in &[1usize, 10, 100, 500] {
        let k = N * permille / 1000;
        let pred = format!("quantity < {k}");
        g.bench_with_input(BenchmarkId::new("full_scan", permille), &pred, |b, pred| {
            b.iter(|| {
                scan_db
                    .transaction(|tx| tx.forall("stockitem")?.suchthat(pred)?.count())
                    .unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("index", permille), &pred, |b, pred| {
            b.iter(|| {
                ix_db
                    .transaction(|tx| tx.forall("stockitem")?.suchthat(pred)?.count())
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
