//! Figure F11 — reader scaling on the concurrent read path.
//!
//! The paper's single-program transaction model serializes writers; this
//! figure measures what PR 3 bought readers: snapshot read transactions
//! (`Database::begin_read`) that never touch the writer gate, over the
//! lock-striped buffer pool. One durable 100k-object inventory cluster
//! is shared by 1, 2, 4, then 8 reader threads; each thread loops either
//! point lookups (index probe on `quantity`) or full cluster scans for a
//! fixed wall-clock window, and we report aggregate ops/sec.
//!
//! Expected shape: near-linear scaling until threads exceed cores. On a
//! host with ≥4 cores the run asserts ≥2x aggregate point-lookup
//! throughput at 4 threads vs 1 (the acceptance bar); on smaller hosts
//! the assertion is skipped but the numbers are still emitted.
//!
//! Output: a table on stderr and `BENCH_f11.json` at the repo root
//! (override with `ODE_BENCH_OUT`). Set `ODE_BENCH_QUICK=1` for a
//! seconds-long smoke run (CI).
//!
//! History: PR 8 found the 8-thread `scan_speedup` collapsing to 0.17x
//! at 100k objects (fine at 10k) because `extent_of` materialized the
//! whole extent as a `Vec<(Oid, ObjState)>` — N concurrent scans held N
//! full decoded copies and blew the cache/allocator budget. The extent
//! path now streams page-at-a-time (`for_each_extent`), so a scan's
//! residency is O(pages + results) regardless of extent size; the full
//! run asserts the collapse stays gone (8-thread aggregate scan
//! throughput must stay near the 1-thread rate even when time-sliced on
//! one core). Each JSON row also records the previous committed run's
//! rates and the delta, so regressions are visible in the artifact
//! itself.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use ode_bench::workload;
use ode_core::prelude::*;
use ode_storage::filestore::FileStoreOptions;

const THREAD_COUNTS: &[usize] = &[1, 2, 4, 8];

struct Config {
    objects: usize,
    window: Duration,
    quick: bool,
}

impl Config {
    fn from_env() -> Self {
        let quick = std::env::var("ODE_BENCH_QUICK").is_ok_and(|v| v != "0");
        if quick {
            Config {
                objects: 10_000,
                window: Duration::from_millis(250),
                quick,
            }
        } else {
            Config {
                objects: 100_000,
                window: Duration::from_millis(1500),
                quick,
            }
        }
    }
}

struct Row {
    threads: usize,
    point_ops_s: f64,
    scan_ops_s: f64,
}

fn file_db(cfg: &Config) -> Database {
    let dir = workload::temp_dir("f11");
    let db = Database::open_with(
        &dir,
        FileStoreOptions {
            // Keep the whole cluster resident: this figure measures lock
            // scaling on the read path, not eviction behaviour (that is
            // F9's job).
            pool_pages: 16_384,
            sync_commits: false,
            ..FileStoreOptions::default()
        },
        DbConfig::default(),
    )
    .expect("open");
    workload::define_inventory(&db);
    workload::fill_inventory(&db, cfg.objects);
    db.create_index("stockitem", "quantity").expect("index");
    db.checkpoint().expect("checkpoint");
    db
}

/// Run `threads` readers for the window; each op is one snapshot read
/// transaction. Returns aggregate ops/sec.
fn run(
    db: &Database,
    threads: usize,
    window: Duration,
    op: impl Fn(&Database, u64) + Send + Copy,
) -> f64 {
    let start = Arc::new(Barrier::new(threads + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let mut total_ops = 0u64;
    let mut elapsed = Duration::ZERO;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let start = Arc::clone(&start);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut ops = 0u64;
                    let mut i = (t as u64) << 32;
                    start.wait();
                    while !stop.load(Ordering::Relaxed) {
                        op(db, i);
                        ops += 1;
                        i = i.wrapping_add(1);
                    }
                    ops
                })
            })
            .collect();
        start.wait();
        let t0 = Instant::now();
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            total_ops += h.join().expect("reader thread");
        }
        elapsed = t0.elapsed();
    });
    total_ops as f64 / elapsed.as_secs_f64()
}

fn main() {
    let cfg = Config::from_env();
    let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    eprintln!(
        "f11: {} objects, {:?} window per cell, host parallelism {}",
        cfg.objects, cfg.window, parallelism
    );

    let db = file_db(&cfg);
    let n = cfg.objects as u64;
    // Warm the pool once so every cell measures a resident dataset.
    db.read(|rtx| rtx.forall("stockitem")?.count())
        .expect("warmup");

    let point = move |db: &Database, i: u64| {
        // Deterministic pseudo-random key: hits the secondary index.
        let k = (i.wrapping_mul(2654435761)) % n;
        db.read(|rtx| {
            rtx.forall("stockitem")?
                .suchthat(&format!("quantity == {k}"))?
                .count()
        })
        .expect("point lookup");
    };
    let scan = move |db: &Database, _i: u64| {
        let c = db
            .read(|rtx| rtx.forall("stockitem")?.count())
            .expect("scan");
        assert_eq!(c, n as usize);
    };

    let mut rows = Vec::new();
    for &threads in THREAD_COUNTS {
        let point_ops_s = run(&db, threads, cfg.window, point);
        // Scans are long ops; quick mode keeps the same window.
        let scan_ops_s = run(&db, threads, cfg.window, scan);
        eprintln!(
            "f11: threads={threads:<2} point={point_ops_s:>10.0} ops/s  scan={scan_ops_s:>8.1} ops/s"
        );
        rows.push(Row {
            threads,
            point_ops_s,
            scan_ops_s,
        });
    }

    let out = std::env::var("ODE_BENCH_OUT").map_or_else(
        |_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_f11.json")
        },
        PathBuf::from,
    );
    // Rates from the last committed run, so each row can record its
    // delta — the regression ledger the figure exists for.
    let prev = prev_rates(&out);

    let base_point = rows[0].point_ops_s;
    let base_scan = rows[0].scan_ops_s;
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"figure\": \"f11_concurrent_readers\",");
    let _ = writeln!(json, "  \"objects\": {},", cfg.objects);
    let _ = writeln!(json, "  \"window_ms\": {},", cfg.window.as_millis());
    let _ = writeln!(json, "  \"quick\": {},", cfg.quick);
    let _ = writeln!(json, "  \"host_parallelism\": {parallelism},");
    // Reader *scaling* measured on one hardware thread says nothing —
    // every thread count time-slices the same core — so such runs are
    // recorded but flagged non-credible.
    let _ = writeln!(json, "  \"credible\": {},", parallelism >= 2);
    let _ = writeln!(json, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let delta = prev
            .iter()
            .find(|(t, _, _)| *t == r.threads)
            .map_or(String::new(), |(_, old_point, old_scan)| {
                format!(
                    ", \"prev_point_ops_per_sec\": {old_point:.1}, \"prev_scan_ops_per_sec\": {old_scan:.1}, \"point_delta_pct\": {:.1}, \"scan_delta_pct\": {:.1}",
                    (r.point_ops_s - old_point) / old_point * 100.0,
                    (r.scan_ops_s - old_scan) / old_scan * 100.0,
                )
            });
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"point_ops_per_sec\": {:.1}, \"scan_ops_per_sec\": {:.1}, \"point_speedup\": {:.2}, \"scan_speedup\": {:.2}{delta}}}{comma}",
            r.threads,
            r.point_ops_s,
            r.scan_ops_s,
            r.point_ops_s / base_point,
            r.scan_ops_s / base_scan,
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out, &json).expect("write BENCH_f11.json");
    eprintln!("f11: wrote {}", out.display());

    // The bug this figure caught: materialized extents collapsed the
    // 8-thread aggregate scan rate to 0.17x of 1-thread at 100k objects.
    // Streaming scans time-slice fairly, so even a 1-core host must hold
    // near the 1-thread rate; 0.7x leaves room for scheduler noise while
    // still failing loudly if scans ever materialize again. Quick mode
    // (10k objects) never collapsed, so the gate is full-run-only.
    if !cfg.quick {
        let at8 = rows.iter().find(|r| r.threads == 8).expect("8-thread row");
        let scan_speedup = at8.scan_ops_s / base_scan;
        assert!(
            scan_speedup >= 0.7,
            "scan collapse is back: 8-thread aggregate scan throughput is \
             {scan_speedup:.2}x of 1-thread (bar 0.7x) — extents are materializing again"
        );
        eprintln!("f11: 8-thread scan speedup {scan_speedup:.2}x (>= 0.7x no-collapse bar) — PASS");
    }

    let at4 = rows.iter().find(|r| r.threads == 4).expect("4-thread row");
    let speedup = at4.point_ops_s / base_point;
    if parallelism >= 4 {
        assert!(
            speedup >= 2.0,
            "read path failed to scale: 4-thread point throughput is only {speedup:.2}x of 1-thread"
        );
        eprintln!("f11: 4-thread point speedup {speedup:.2}x (>= 2.0x bar) — PASS");
    } else {
        eprintln!(
            "f11: host has {parallelism} core(s); ≥2x@4-threads assertion skipped (measured {speedup:.2}x)"
        );
        eprintln!("f11: NOT CREDIBLE — single-core scaling numbers are time-slicing artifacts");
    }
}

/// `(threads, point_ops_per_sec, scan_ops_per_sec)` triples from a
/// previous run's JSON. The file is our own line-per-row output, so a
/// plain string scan is enough — no JSON parser in the bench crate's
/// dependency set.
fn prev_rates(path: &std::path::Path) -> Vec<(usize, f64, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let field = |line: &str, key: &str| -> Option<String> {
        let rest = &line[line.find(key)? + key.len()..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().to_string())
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let (Some(threads), Some(point), Some(scan)) = (
            field(line, "\"threads\": "),
            field(line, "\"point_ops_per_sec\": "),
            field(line, "\"scan_ops_per_sec\": "),
        ) else {
            continue;
        };
        if let (Ok(threads), Ok(point), Ok(scan)) = (threads.parse(), point.parse(), scan.parse()) {
            out.push((threads, point, scan));
        }
    }
    out
}
