//! Figure F3 — join strategies (§3.1 and the CODASYL criticism of §3).
//!
//! Three ways to associate employees with their departments:
//!
//! * **pointer navigation** — each employee stores a direct object
//!   reference (the style the paper says OODBs get criticized for, and
//!   which is unbeatable *when the pointer exists*),
//! * **declarative value join** — `forall e, d suchthat (e.deptno ==
//!   d.dno)` with nested-loop evaluation (the "arbitrary join" the paper
//!   adds; costs O(|E|·|D|)),
//! * **value join + index** on the inner relation's key.
//!
//! Expected shape: navigation ≈ O(|E|); nested join grows with |E|·|D|;
//! the index restores O(|E| log |D|) — declarative queries need the
//! optimizer hook to compete with pointers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ode_bench::workload;

fn short() -> Criterion {
    Criterion::default()
        .without_plots()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f3_join");
    for &(n_emp, n_dept) in &[(1_000usize, 20usize), (4_000, 80)] {
        let tag = format!("{n_emp}x{n_dept}");
        let db = workload::company_db(n_emp, n_dept, false);

        g.bench_with_input(BenchmarkId::new("pointer_navigation", &tag), &(), |b, _| {
            b.iter(|| {
                db.transaction(|tx| {
                    let mut matched = 0usize;
                    tx.forall("employee")?.run(|tx, e| {
                        let d = tx.get(e, "dept")?.as_ref_oid()?;
                        let _dname = tx.get(d, "dname")?;
                        matched += 1;
                        Ok(())
                    })?;
                    Ok(matched)
                })
                .unwrap()
            })
        });

        g.bench_with_input(BenchmarkId::new("nested_loop_join", &tag), &(), |b, _| {
            b.iter(|| {
                db.transaction(|tx| {
                    Ok(tx
                        .forall_join(&[("e", "employee"), ("d", "department")])?
                        .suchthat("e.deptno == d.dno")?
                        .collect()?
                        .len())
                })
                .unwrap()
            })
        });

        // Index-assisted: with an index on department.dno, the join planner
        // probes automatically — the *same* declarative statement as above.
        let ix_db = workload::company_db(n_emp, n_dept, true);
        g.bench_with_input(BenchmarkId::new("indexed_probe_join", &tag), &(), |b, _| {
            b.iter(|| {
                ix_db
                    .transaction(|tx| {
                        Ok(tx
                            .forall_join(&[("e", "employee"), ("d", "department")])?
                            .suchthat("e.deptno == d.dno")?
                            .collect()?
                            .len())
                    })
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
