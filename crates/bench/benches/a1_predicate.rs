//! Ablation A1 — predicate evaluation strategies.
//!
//! The same selection (`quantity < N/10`, 10% selectivity over 20k
//! objects) evaluated three ways:
//!
//! * **interpreted** — the expression language (`suchthat`), as O++'s
//!   textual queries would be,
//! * **native closure** — a Rust closure over the decoded object state
//!   (the host-language body, no interpreter),
//! * **index** — the B-tree answers the conjunct; the predicate only
//!   re-checks matches.
//!
//! This quantifies the interpreter tax that DESIGN.md accepts in exchange
//! for persistable predicates, and shows the index makes it moot for
//! selective queries.

use criterion::{criterion_group, criterion_main, Criterion};
use ode_bench::workload;
use ode_model::Value;

fn short() -> Criterion {
    Criterion::default()
        .without_plots()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900))
}

const N: usize = 20_000;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("a1_predicate");
    let (db, _) = workload::inventory_db(N, false);
    let (ix_db, _) = workload::inventory_db(N, true);
    let cut = (N / 10) as i64;
    let pred = format!("quantity < {cut}");

    g.bench_function("interpreted_suchthat", |b| {
        b.iter(|| {
            db.transaction(|tx| tx.forall("stockitem")?.suchthat(&pred)?.count())
                .unwrap()
        })
    });
    g.bench_function("native_closure", |b| {
        b.iter(|| {
            db.transaction(|tx| {
                tx.forall("stockitem")?
                    .filter(|s| matches!(s.fields[1], Value::Int(q) if q < cut))
                    .count()
            })
            .unwrap()
        })
    });
    g.bench_function("index_plus_recheck", |b| {
        b.iter(|| {
            ix_db
                .transaction(|tx| tx.forall("stockitem")?.suchthat(&pred)?.count())
                .unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
