//! Figure F12 — always-on tracing overhead.
//!
//! The flight recorder (PR 6) records a handful of spans per request —
//! txn, query pass, commit — into a bounded lock-free ring. This figure
//! measures what that costs on F1's cluster-scan workload: the same
//! scan transaction timed with the recorder enabled (the default) and
//! disabled, trials interleaved so drift hits both arms equally.
//!
//! The acceptance bar: enabled/disabled median ratio ≤ 1.05 (spans are
//! per-transaction, not per-object, so a scan's cost is dominated by the
//! object walk and the recorder should disappear into it).
//!
//! Output: a table on stderr and `BENCH_f12.json` at the repo root
//! (override with `ODE_BENCH_OUT`). Set `ODE_BENCH_QUICK=1` for a
//! seconds-long smoke run (CI).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use ode_bench::workload;

struct Config {
    objects: usize,
    trials: usize,
    quick: bool,
}

impl Config {
    fn from_env() -> Self {
        let quick = std::env::var("ODE_BENCH_QUICK").is_ok_and(|v| v != "0");
        if quick {
            Config {
                objects: 10_000,
                trials: 15,
                quick,
            }
        } else {
            Config {
                objects: 50_000,
                trials: 31,
                quick,
            }
        }
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let cfg = Config::from_env();
    let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    eprintln!(
        "f12: {} objects, {} interleaved trials per arm, host parallelism {}",
        cfg.objects, cfg.trials, parallelism
    );

    let (db, _) = workload::inventory_db(cfg.objects, false);
    let scan = || {
        let n = db
            .transaction(|tx| tx.forall("stockitem")?.count())
            .expect("scan");
        assert_eq!(n, cfg.objects);
    };
    // Warm both arms before measuring.
    scan();

    let mut enabled = Vec::with_capacity(cfg.trials);
    let mut disabled = Vec::with_capacity(cfg.trials);
    for _ in 0..cfg.trials {
        db.flight().set_enabled(true);
        let t = Instant::now();
        scan();
        enabled.push(t.elapsed().as_secs_f64() * 1e6);

        db.flight().set_enabled(false);
        let t = Instant::now();
        scan();
        disabled.push(t.elapsed().as_secs_f64() * 1e6);
    }
    db.flight().set_enabled(true);

    let on = median(&mut enabled);
    let off = median(&mut disabled);
    let ratio = on / off;
    eprintln!("f12: recorder on  {on:>10.1} µs/scan");
    eprintln!("f12: recorder off {off:>10.1} µs/scan");
    eprintln!("f12: overhead ratio {ratio:.3}x");

    // Scaling measurements from a single hardware thread are noise-bound
    // and flagged non-credible across every BENCH_*.json in this repo;
    // for this figure one core still yields a valid ratio (both arms run
    // on the same thread), but keep the flag consistent.
    let credible = parallelism >= 2;
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"figure\": \"f12_trace_overhead\",");
    let _ = writeln!(json, "  \"objects\": {},", cfg.objects);
    let _ = writeln!(json, "  \"trials\": {},", cfg.trials);
    let _ = writeln!(json, "  \"quick\": {},", cfg.quick);
    let _ = writeln!(json, "  \"host_parallelism\": {parallelism},");
    let _ = writeln!(json, "  \"credible\": {credible},");
    let _ = writeln!(json, "  \"scan_us_recorder_on\": {on:.1},");
    let _ = writeln!(json, "  \"scan_us_recorder_off\": {off:.1},");
    let _ = writeln!(json, "  \"overhead_ratio\": {ratio:.4}");
    json.push_str("}\n");

    let out = std::env::var("ODE_BENCH_OUT").map_or_else(
        |_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_f12.json")
        },
        PathBuf::from,
    );
    std::fs::write(&out, &json).expect("write BENCH_f12.json");
    eprintln!("f12: wrote {}", out.display());

    assert!(
        ratio <= 1.05,
        "always-on tracing costs {:.1}% on a cluster scan (budget: 5%)",
        (ratio - 1.0) * 100.0
    );
    eprintln!(
        "f12: tracing overhead {:.1}% (≤5% bar) — PASS",
        (ratio - 1.0) * 100.0
    );
}
