//! Memory-bound concurrent scans (ISSUE 10 acceptance): N concurrent
//! extent scans must hold O(pages + results) resident memory, not
//! O(N × extent). Before the streaming extent path, every scan
//! materialized the full extent as a `Vec<(Oid, ObjState)>`, so 8
//! concurrent 100k-object scans held 8 decoded copies of the database
//! (~25 MB each) and peak RSS grew by hundreds of megabytes; streaming
//! decodes page-at-a-time and a `count()` retains nothing.
//!
//! The default run uses a small dataset as a plain correctness check.
//! CI's bench-smoke job sets `ODE_RSS_TEST=1` for the full 100k-object
//! run with the peak-RSS assertion (Linux-only: reads `VmHWM` from
//! `/proc/self/status`).

use std::sync::{Arc, Barrier};

use ode_bench::workload;
use ode_core::prelude::*;
use ode_storage::filestore::FileStoreOptions;

const THREADS: usize = 8;
const SCANS_PER_THREAD: usize = 3;

/// Peak resident set size in kB (`VmHWM`), or `None` off-Linux.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[test]
fn concurrent_scans_stay_memory_bounded() {
    let full = std::env::var("ODE_RSS_TEST").is_ok_and(|v| v != "0");
    let objects: usize = if full { 100_000 } else { 5_000 };

    let dir = workload::temp_dir("scan-rss");
    let db = Database::open_with(
        &dir,
        FileStoreOptions {
            // Enough pool to keep the dataset resident: the bound under
            // test is the per-scan decode residency, not eviction.
            pool_pages: 8_192,
            sync_commits: false,
            ..FileStoreOptions::default()
        },
        DbConfig::default(),
    )
    .expect("open");
    workload::define_inventory(&db);
    workload::fill_inventory(&db, objects);
    db.checkpoint().expect("checkpoint");

    // Warm the pool so the baseline includes the resident dataset and
    // the measured delta isolates scan-path allocations.
    let c = db
        .read(|rtx| rtx.forall("stockitem")?.count())
        .expect("warmup scan");
    assert_eq!(c, objects);
    let baseline_kb = peak_rss_kb();

    // 8 overlapping full scans — the f11 collapse shape.
    let start = Arc::new(Barrier::new(THREADS));
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let start = Arc::clone(&start);
            let db = &db;
            scope.spawn(move || {
                start.wait();
                for _ in 0..SCANS_PER_THREAD {
                    let c = db
                        .read(|rtx| rtx.forall("stockitem")?.count())
                        .expect("scan");
                    assert_eq!(c, objects);
                }
            });
        }
    });

    let (Some(before), Some(after)) = (baseline_kb, peak_rss_kb()) else {
        eprintln!("scan_rss: no /proc/self/status — RSS assertion skipped");
        return;
    };
    let growth_kb = after.saturating_sub(before);
    eprintln!(
        "scan_rss: objects={objects} threads={THREADS} peak RSS {before} kB -> {after} kB (+{growth_kb} kB)"
    );
    if full {
        // Materialized scans grew peak RSS by ~8 × 25 MB here; streaming
        // stays within one extent's worth even with allocator slack.
        const BOUND_KB: u64 = 64 * 1024;
        assert!(
            growth_kb < BOUND_KB,
            "8 concurrent scans grew peak RSS by {growth_kb} kB (bound {BOUND_KB} kB): \
             scans are materializing extents again"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
