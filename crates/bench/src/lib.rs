//! Workload generators and helpers shared by the Criterion benches.
//!
//! The SIGMOD 1989 Ode paper has no quantitative evaluation section; the
//! benches in this crate are the characterization suite DESIGN.md defines
//! in its place (figures F1–F10), and this library holds the deterministic
//! workload builders they share.

pub mod workload;
