//! Engine-level crash-torture workload (DESIGN.md §10).
//!
//! Drives the full engine — transactions, bounded commit retry, catalog
//! recovery — over a [`FailpointStore`]-wrapped [`FileStore`] through
//! randomized commit/crash/reopen cycles, checking after every reopen
//! that acknowledged objects are readable, that ack-lost transactions
//! landed all-or-nothing, and that recovery itself never fails.
//!
//! ```text
//! cargo run --release -p ode-bench --bin torture -- \
//!     --cycles 50 --seed 3405705229 --txns 25
//! ```

use std::path::{Path, PathBuf};
use std::sync::Arc;

use ode_core::prelude::*;
use ode_storage::filestore::{FileStore, FileStoreOptions};
use ode_storage::{FailpointConfig, FailpointStore, FaultKind, Store};

struct Args {
    cycles: u64,
    seed: u64,
    txns: u64,
    dir: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        cycles: 50,
        seed: 0xCAFE_F00D,
        txns: 25,
        dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--cycles" => args.cycles = value().parse().expect("--cycles takes a number"),
            "--seed" => args.seed = value().parse().expect("--seed takes a number"),
            "--txns" => args.txns = value().parse().expect("--txns takes a number"),
            "--dir" => args.dir = Some(PathBuf::from(value())),
            other => panic!("unknown flag {other} (see --cycles/--seed/--txns/--dir)"),
        }
    }
    args
}

fn open_db(dir: &Path, cfg: FailpointConfig) -> (Database, Arc<FailpointStore>) {
    let file = FileStore::open_with(
        dir,
        FileStoreOptions {
            sync_commits: false,
            ..FileStoreOptions::default()
        },
    )
    .expect("recovery invariant: reopen after crash must succeed");
    let fp = Arc::new(FailpointStore::new(Arc::new(file) as Arc<dyn Store>, cfg));
    let db = Database::from_store(
        Arc::clone(&fp) as Arc<dyn Store>,
        DbConfig {
            commit_retries: 2,
            ..DbConfig::default()
        },
    )
    .expect("recovery invariant: catalog replay must succeed");
    (db, fp)
}

fn main() {
    let args = parse_args();
    let dir = args.dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("ode-engine-torture-{}", std::process::id()))
    });
    let _ = std::fs::remove_dir_all(&dir);

    // Schema setup on a fault-free store, closed cleanly; every later
    // cycle recovers it from the persisted catalog.
    {
        let (db, _fp) = open_db(&dir, FailpointConfig::disabled(args.seed));
        db.define_from_source("class item { int n = 0; }").unwrap();
        db.create_cluster("item").unwrap();
    }

    let mut acked: Vec<(Oid, i64)> = Vec::new();
    let mut in_doubt: Vec<(Oid, i64)> = Vec::new();
    let mut serial = 0i64;
    let (mut faults, mut retries, mut replayed, mut aborted) = (0u64, 0u64, 0u64, 0u64);

    for cycle in 0..args.cycles {
        let (db, fp) = open_db(
            &dir,
            FailpointConfig::torture(args.seed ^ cycle.wrapping_mul(0x9E37_79B9)),
        );
        replayed += db.telemetry().storage.replayed_groups;

        // ---------------------------------------- verify after reopen
        let mut promoted: Vec<(Oid, i64)> = Vec::new();
        db.read(|tx| {
            for &(oid, n) in &acked {
                let got = tx.get(oid, "n")?.as_int()?;
                assert_eq!(got, n, "invariant 1: acked object {oid:?} lost or wrong");
            }
            for &(oid, n) in &in_doubt {
                if let Ok(v) = tx.get(oid, "n") {
                    let got = v.as_int()?;
                    assert_eq!(got, n, "in-doubt object {oid:?} holds wrong value");
                    promoted.push((oid, n));
                }
            }
            Ok(())
        })
        .expect("verification reads must not fail");
        acked.extend(promoted);
        in_doubt.clear();

        // ---------------------------------------- workload
        for _ in 0..args.txns {
            serial += 1;
            let n = serial;
            let mut created: Option<Oid> = None;
            let outcome = db.transaction(|tx| {
                let oid = tx.pnew("item", &[("n", n.into())])?;
                created = Some(oid);
                Ok(oid)
            });
            match outcome {
                Ok(oid) => acked.push((oid, n)),
                Err(e) if e.is_unavailable() => {
                    aborted += 1;
                    match fp.take_last_fault() {
                        // Not durable: the WAL tail was rolled back. A failed
                        // group-commit fsync lands here too — the abandoned
                        // batch was never applied, so its heap slot may be
                        // reused by a later acked commit (whose replay wins by
                        // WAL order); no presence/value claim survives the
                        // abandonment, only "the acked reuser is intact",
                        // which invariant 1 already checks.
                        Some(FaultKind::CommitPre)
                        | Some(FaultKind::Release)
                        | Some(FaultKind::GroupSync)
                        | None => {}
                        // Durable-side ack loss (fault fires after the batch
                        // fully applied): the next reopen must see it either
                        // fully present with our value or fully absent.
                        Some(FaultKind::CommitAckLoss) => {
                            let oid = created.expect("ack loss happens after pnew");
                            in_doubt.push((oid, n));
                        }
                        Some(other) => panic!("unexpected fault class {other:?}"),
                    }
                }
                Err(e) => panic!("cycle {cycle}: non-transient abort: {e}"),
            }
        }

        let t = db.telemetry();
        faults += t.storage.faults_injected;
        retries += t.txn.commit_retries;
        std::mem::forget(db); // crash: no close-path checkpoint
    }

    // Final clean reopen: everything acknowledged must have survived.
    let (db, _fp) = open_db(&dir, FailpointConfig::disabled(args.seed));
    replayed += db.telemetry().storage.replayed_groups;
    db.read(|tx| {
        for &(oid, n) in &acked {
            assert_eq!(tx.get(oid, "n")?.as_int()?, n);
        }
        Ok(())
    })
    .unwrap();

    println!(
        "engine crash-torture: {} cycles, {} committed objects, {aborted} transient aborts",
        args.cycles,
        acked.len()
    );
    println!("faults injected     {faults}");
    println!("commit retries      {retries}");
    println!("groups replayed     {replayed}");
    println!("--- final .stats rows ---");
    for (k, v) in db.telemetry().rows() {
        if ["storage.", "recovery.", "txn.", "commit."]
            .iter()
            .any(|p| k.starts_with(p))
        {
            println!("{k:<32} {v}");
        }
    }
    assert!(faults > 0, "torture run injected no faults");
    assert!(replayed > 0, "torture run never exercised recovery");
    if args.dir.is_none() {
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!("ok: all invariants held");
}
