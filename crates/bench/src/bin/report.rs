//! Regenerate the EXPERIMENTS.md measurement tables.
//!
//! The SIGMOD 1989 Ode paper has no quantitative evaluation section;
//! DESIGN.md defines a characterization suite (figures F1–F10) in its
//! place. This binary runs each figure's workload with simple wall-clock
//! timing (medians over several trials) and prints one markdown table per
//! figure. Criterion benches (`cargo bench`) cover the same figures with
//! statistical rigor; this report favors a compact, reproducible summary.
//!
//! Run with: `cargo run -p ode-bench --release --bin report`

use std::collections::BTreeSet;
use std::time::Instant;

use ode_bench::workload;
use ode_core::prelude::*;
use ode_storage::filestore::FileStoreOptions;

/// Median wall time of `trials` runs of `f`, in microseconds.
fn time_us(trials: usize, mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(trials);
    for _ in 0..trials {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64() * 1e6);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn fmt_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.2} s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{us:.1} µs")
    }
}

fn f1_cluster_scan() {
    println!("\n## F1 — cluster scan throughput (§3.1)\n");
    println!("| objects | scan time | objects/s |");
    println!("|---|---|---|");
    for &n in &[1_000usize, 10_000, 50_000] {
        let (db, _) = workload::inventory_db(n, false);
        let us = time_us(5, || {
            db.transaction(|tx| tx.forall("stockitem")?.count())
                .unwrap();
        });
        println!("| {n} | {} | {:.0} |", fmt_us(us), n as f64 / (us / 1e6));
    }
    let db = workload::university_db(5_000);
    let deep = time_us(5, || {
        db.transaction(|tx| tx.forall("person")?.count()).unwrap();
    });
    let shallow = time_us(5, || {
        db.transaction(|tx| tx.forall("person")?.shallow().count())
            .unwrap();
    });
    println!("| deep hierarchy (4×5k) | {} | — |", fmt_us(deep));
    println!("| shallow (1×5k) | {} | — |", fmt_us(shallow));
    println!(
        "\ndeep/shallow ratio: {:.1}× (4 clusters vs 1, expected ≈4×)",
        deep / shallow
    );
}

fn f2_selection() {
    println!("\n## F2 — selection: full scan vs. index (§3.1)\n");
    const N: usize = 20_000;
    let (scan_db, _) = workload::inventory_db(N, false);
    let (ix_db, _) = workload::inventory_db(N, true);
    println!("| selectivity | full scan | index | speedup |");
    println!("|---|---|---|---|");
    for &permille in &[1usize, 10, 100, 500] {
        let pred = format!("quantity < {}", N * permille / 1000);
        let s = time_us(5, || {
            scan_db
                .transaction(|tx| tx.forall("stockitem")?.suchthat(&pred)?.count())
                .unwrap();
        });
        let i = time_us(5, || {
            ix_db
                .transaction(|tx| tx.forall("stockitem")?.suchthat(&pred)?.count())
                .unwrap();
        });
        println!(
            "| {:.1}% | {} | {} | {:.1}× |",
            permille as f64 / 10.0,
            fmt_us(s),
            fmt_us(i),
            s / i
        );
    }
}

fn f3_join() {
    println!("\n## F3 — join strategies (§3.1)\n");
    println!("| workload | pointer navigation | nested-loop join | indexed probe join |");
    println!("|---|---|---|---|");
    for &(n_emp, n_dept) in &[(1_000usize, 20usize), (4_000, 80)] {
        let db = workload::company_db(n_emp, n_dept, false);
        let nav = time_us(3, || {
            db.transaction(|tx| {
                let mut m = 0;
                tx.forall("employee")?.run(|tx, e| {
                    let d = tx.get(e, "dept")?.as_ref_oid()?;
                    let _ = tx.get(d, "dname")?;
                    m += 1;
                    Ok(())
                })?;
                Ok(m)
            })
            .unwrap();
        });
        let join = time_us(3, || {
            db.transaction(|tx| {
                Ok(tx
                    .forall_join(&[("e", "employee"), ("d", "department")])?
                    .suchthat("e.deptno == d.dno")?
                    .collect()?
                    .len())
            })
            .unwrap();
        });
        // Same declarative join, but with an index on department.dno the
        // planner probes automatically.
        let ix_db = workload::company_db(n_emp, n_dept, true);
        let probe = time_us(3, || {
            ix_db
                .transaction(|tx| {
                    Ok(tx
                        .forall_join(&[("e", "employee"), ("d", "department")])?
                        .suchthat("e.deptno == d.dno")?
                        .collect()?
                        .len())
                })
                .unwrap();
        });
        println!(
            "| {n_emp}⋈{n_dept} | {} | {} | {} |",
            fmt_us(nav),
            fmt_us(join),
            fmt_us(probe)
        );
    }
}

fn f4_fixpoint() {
    println!("\n## F4 — fixpoint query evaluation (§3.2)\n");
    println!(
        "| BOM (depth×fanout) | ode cluster fixpoint | ode set fixpoint | semi-naive | naive |"
    );
    println!("|---|---|---|---|---|");
    for &(depth, fanout) in &[(8usize, 8usize), (32, 8), (64, 16)] {
        let (db, root, parts) = workload::bom_db(depth, fanout);
        let edges = workload::bom_edges(&db);
        let cluster = time_us(3, || {
            let mut tx = db.begin();
            tx.pnew("reached", &[("part", Value::from(root.as_str()))])
                .unwrap();
            let mut seen = 0usize;
            tx.forall("reached")
                .unwrap()
                .fixpoint()
                .run(|tx, row| {
                    seen += 1;
                    let part = tx.get(row, "part")?.as_str()?.to_string();
                    let children = tx
                        .forall("usage")?
                        .suchthat(&format!("parent == \"{part}\""))?
                        .collect_values("child")?;
                    for child in children {
                        let c = child.as_str()?.to_string();
                        if tx
                            .forall("reached")?
                            .suchthat(&format!("part == \"{c}\""))?
                            .count()?
                            == 0
                        {
                            tx.pnew("reached", &[("part", child)])?;
                        }
                    }
                    Ok(())
                })
                .unwrap();
            assert_eq!(seen, parts);
            tx.abort();
        });
        let set = time_us(3, || {
            let mut tx = db.begin();
            let wl = tx.pnew("worklist", &[]).unwrap();
            tx.set_insert(wl, "parts", root.as_str()).unwrap();
            let n = tx
                .iterate_set(wl, "parts", |tx, v| {
                    let part = v.as_str()?.to_string();
                    let children = tx
                        .forall("usage")?
                        .suchthat(&format!("parent == \"{part}\""))?
                        .collect_values("child")?;
                    for c in children {
                        tx.set_insert(wl, "parts", c)?;
                    }
                    Ok(())
                })
                .unwrap();
            assert_eq!(n, parts);
            tx.abort();
        });
        let semi = time_us(5, || {
            let mut closure: BTreeSet<&str> = BTreeSet::new();
            let mut delta: BTreeSet<&str> = [root.as_str()].into();
            while !delta.is_empty() {
                closure.extend(delta.iter().copied());
                let mut next = BTreeSet::new();
                for (p, c) in &edges {
                    if delta.contains(p.as_str()) && !closure.contains(c.as_str()) {
                        next.insert(c.as_str());
                    }
                }
                delta = next;
            }
            assert_eq!(closure.len(), parts);
        });
        let naive = time_us(5, || {
            let mut closure: BTreeSet<&str> = [root.as_str()].into();
            loop {
                let mut next: BTreeSet<&str> = [root.as_str()].into();
                for (p, c) in &edges {
                    if closure.contains(p.as_str()) {
                        next.insert(c.as_str());
                    }
                }
                if next == closure {
                    break;
                }
                closure = next;
            }
            assert_eq!(closure.len(), parts);
        });
        println!(
            "| {depth}×{fanout} ({parts} parts) | {} | {} | {} | {} |",
            fmt_us(cluster),
            fmt_us(set),
            fmt_us(semi),
            fmt_us(naive)
        );
    }
}

fn f5_versions() {
    println!("\n## F5 — version operations vs. chain depth (§4)\n");
    println!("| chain depth | generic deref | specific deref | newversion | list versions |");
    println!("|---|---|---|---|---|");
    {
        // Ablation row: a never-versioned object stores its state inline in
        // the anchor — one record read, no version table.
        let (db, oid) = workload::versioned_db(0);
        let inline = time_us(7, || {
            db.transaction(|tx| Ok(tx.read(oid)?.fields[1].clone()))
                .unwrap();
        });
        println!("| unversioned (inline) | {} | — | — | — |", fmt_us(inline));
    }
    for &chain in &[1usize, 16, 128, 512] {
        let (db, oid) = workload::versioned_db(chain);
        let generic = time_us(7, || {
            db.transaction(|tx| Ok(tx.read(oid)?.fields[1].clone()))
                .unwrap();
        });
        let mid = VersionRef {
            oid,
            version: (chain / 2) as u32,
        };
        let specific = time_us(7, || {
            db.transaction(|tx| Ok(tx.read_version(mid)?.fields[1].clone()))
                .unwrap();
        });
        let newv = time_us(7, || {
            let mut tx = db.begin();
            tx.newversion(oid).unwrap();
            tx.abort();
        });
        let list = time_us(7, || {
            db.transaction(|tx| tx.versions(oid)).unwrap();
        });
        println!(
            "| {chain} | {} | {} | {} | {} |",
            fmt_us(generic),
            fmt_us(specific),
            fmt_us(newv),
            fmt_us(list)
        );
    }
}

fn f6_constraints() {
    println!("\n## F6 — constraint-checking overhead (§5)\n");
    println!("| constraints on class | update+commit |");
    println!("|---|---|");
    for &n in &[0usize, 1, 2, 4, 8] {
        let (db, oid) = workload::constrained_db(n);
        let mut v = 0i64;
        let us = time_us(7, || {
            v += 1;
            db.transaction(|tx| tx.set(oid, "quantity", v % 1000))
                .unwrap();
        });
        println!("| {n} | {} |", fmt_us(us));
    }
}

fn f7_triggers() {
    println!("\n## F7 — trigger evaluation scaling (§6)\n");
    println!("| activations | where | update+commit |");
    println!("|---|---|---|");
    for &hot in &[0usize, 10, 100, 1_000] {
        let (db, oid) = workload::triggered_db(hot, 0);
        let mut v = 0i64;
        let us = time_us(7, || {
            v += 1;
            db.transaction(|tx| tx.set(oid, "quantity", 1_000 + v % 100))
                .unwrap();
        });
        println!("| {hot} | on the written object | {} |", fmt_us(us));
    }
    for &cold in &[1_000usize, 10_000] {
        let (db, oid) = workload::triggered_db(1, cold);
        let mut v = 0i64;
        let us = time_us(7, || {
            v += 1;
            db.transaction(|tx| tx.set(oid, "quantity", 1_000 + v % 100))
                .unwrap();
        });
        println!("| {cold} | on other objects | {} |", fmt_us(us));
    }
}

fn f8_commit() {
    println!("\n## F8 — durable commit / WAL throughput (substrate)\n");
    println!("| objects per txn | fsync | nosync | fsync objs/s |");
    println!("|---|---|---|---|");
    for &batch in &[1usize, 10, 100, 1000] {
        let mut times = [0f64; 2];
        for (i, sync) in [true, false].into_iter().enumerate() {
            let dir = workload::temp_dir(&format!("report-f8-{batch}-{sync}"));
            let db = Database::open_with(
                &dir,
                FileStoreOptions {
                    sync_commits: sync,
                    ..FileStoreOptions::default()
                },
                DbConfig::default(),
            )
            .unwrap();
            workload::define_inventory(&db);
            let mut serial = 0usize;
            times[i] = time_us(5, || {
                db.transaction(|tx| {
                    for _ in 0..batch {
                        serial += 1;
                        tx.pnew("stockitem", &[("name", Value::from(format!("i{serial}")))])?;
                    }
                    Ok(())
                })
                .unwrap();
            });
            drop(db);
            let _ = std::fs::remove_dir_all(&dir);
        }
        println!(
            "| {batch} | {} | {} | {:.0} |",
            fmt_us(times[0]),
            fmt_us(times[1]),
            batch as f64 / (times[0] / 1e6)
        );
    }
}

fn f9_bufpool() {
    println!("\n## F9 — buffer pool (substrate)\n");
    println!("| pool | scan time | hit rate | evictions/scan |");
    println!("|---|---|---|---|");
    const N: usize = 20_000;
    for &(tag, pool) in &[("4096 pages (fits)", 4096usize), ("16 pages (thrash)", 16)] {
        let dir = workload::temp_dir(&format!("report-f9-{pool}"));
        let db = Database::open_with(
            &dir,
            FileStoreOptions {
                pool_pages: pool,
                sync_commits: false,
                ..FileStoreOptions::default()
            },
            DbConfig::default(),
        )
        .unwrap();
        workload::define_inventory(&db);
        workload::fill_inventory(&db, N);
        db.checkpoint().unwrap();
        // Warm pass, then measure.
        db.transaction(|tx| tx.forall("stockitem")?.count())
            .unwrap();
        db.reset_store_stats();
        let mut scans = 0u64;
        let us = time_us(5, || {
            scans += 1;
            db.transaction(|tx| tx.forall("stockitem")?.count())
                .unwrap();
        });
        let stats = db.store_stats();
        let total = stats.pager.hits + stats.pager.misses;
        println!(
            "| {tag} | {} | {:.1}% | {:.0} |",
            fmt_us(us),
            100.0 * stats.pager.hits as f64 / total.max(1) as f64,
            stats.pager.evictions as f64 / scans.max(1) as f64,
        );
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn f10_sets() {
    println!("\n## F10 — sets and insert-during-iteration (§2.6, §3.2)\n");
    println!("| final size | grow during iteration | plain walk |");
    println!("|---|---|---|");
    for &n in &[200usize, 600] {
        let db = Database::in_memory();
        db.define_class(ClassBuilder::new("holder").field_default(
            "nums",
            Type::Set(Box::new(Type::Int)),
            Value::Set(ode_model::SetValue::new()),
        ))
        .unwrap();
        db.create_cluster("holder").unwrap();
        let oid = db.transaction(|tx| tx.pnew("holder", &[])).unwrap();
        let grow = time_us(3, || {
            let mut tx = db.begin();
            tx.set_insert(oid, "nums", 0i64).unwrap();
            let v = tx
                .iterate_set(oid, "nums", |tx, v| {
                    let k = v.as_int()?;
                    if (k as usize) < n - 1 {
                        tx.set_insert(oid, "nums", k + 1)?;
                    }
                    Ok(())
                })
                .unwrap();
            assert_eq!(v, n);
            tx.abort();
        });
        db.transaction(|tx| {
            for i in 0..n as i64 {
                tx.set_insert(oid, "nums", i)?;
            }
            Ok(())
        })
        .unwrap();
        let walk = time_us(3, || {
            let mut tx = db.begin();
            let v = tx.iterate_set(oid, "nums", |_t, _v| Ok(())).unwrap();
            assert_eq!(v, n);
            tx.abort();
        });
        println!("| {n} | {} | {} |", fmt_us(grow), fmt_us(walk));
    }
}

fn a1_predicate() {
    println!("\n## A1 — predicate evaluation ablation\n");
    const N: usize = 20_000;
    let (db, _) = workload::inventory_db(N, false);
    let (ix_db, _) = workload::inventory_db(N, true);
    let cut = (N / 10) as i64;
    let pred = format!("quantity < {cut}");
    let interp = time_us(5, || {
        db.transaction(|tx| tx.forall("stockitem")?.suchthat(&pred)?.count())
            .unwrap();
    });
    let native = time_us(5, || {
        db.transaction(|tx| {
            tx.forall("stockitem")?
                .filter(|s| matches!(s.fields[1], ode_core::prelude::Value::Int(q) if q < cut))
                .count()
        })
        .unwrap();
    });
    let indexed = time_us(5, || {
        ix_db
            .transaction(|tx| tx.forall("stockitem")?.suchthat(&pred)?.count())
            .unwrap();
    });
    println!("| strategy | time | vs native |");
    println!("|---|---|---|");
    println!(
        "| interpreted suchthat | {} | {:.1}x |",
        fmt_us(interp),
        interp / native
    );
    println!("| native closure | {} | 1.0x |", fmt_us(native));
    println!(
        "| index + recheck | {} | {:.2}x |",
        fmt_us(indexed),
        indexed / native
    );
}

fn t1_telemetry() {
    println!("\n## T1 — engine telemetry by workload phase\n");
    println!("`Database::telemetry()` JSON snapshots, counters reset between phases.");
    let dir = workload::temp_dir("report-t1");
    let db = Database::open_with(
        &dir,
        FileStoreOptions {
            sync_commits: false,
            ..FileStoreOptions::default()
        },
        DbConfig::default(),
    )
    .unwrap();
    workload::define_inventory(&db);
    db.create_index("stockitem", "quantity").unwrap();
    db.define_class(
        ClassBuilder::new("watched")
            .field_default("quantity", Type::Int, 100)
            .field_default("on_order", Type::Int, 0)
            .trigger("reorder", &[], false, "quantity < 10")
            .action_assign("on_order", "on_order + 1"),
    )
    .unwrap();
    db.create_cluster("watched").unwrap();

    // Phase 1: bulk load.
    db.reset_telemetry();
    workload::fill_inventory(&db, 5_000);
    let watched = db.transaction(|tx| tx.pnew("watched", &[])).unwrap();
    println!("\n### load\n\n```json\n{}\n```", db.telemetry().to_json());

    // Phase 2: queries — one indexed probe, one deep scan, one fixpoint-free
    // aggregate, so the query section shows both plan families.
    db.reset_telemetry();
    db.transaction(|tx| {
        tx.forall("stockitem")?
            .suchthat("quantity == 42")?
            .count()?;
        tx.forall("stockitem")?
            .suchthat("supplier == \"acme\"")?
            .count()?;
        tx.forall("stockitem")?.count()
    })
    .unwrap();
    println!(
        "\n### queries\n\n```json\n{}\n```",
        db.telemetry().to_json()
    );

    // Phase 3: triggers — activate, trip, and let the once-only trigger fire
    // in its weak-coupled transaction.
    db.reset_telemetry();
    db.transaction(|tx| {
        tx.activate_trigger(watched, "reorder", vec![])?;
        Ok(())
    })
    .unwrap();
    db.transaction(|tx| tx.set(watched, "quantity", 5i64))
        .unwrap();
    println!(
        "\n### triggers\n\n```json\n{}\n```",
        db.telemetry().to_json()
    );

    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    println!("# Ode characterization report");
    println!("\nGenerated by `cargo run -p ode-bench --release --bin report`.");
    println!("Medians of several trials; see `cargo bench` for full statistics.");
    f1_cluster_scan();
    f2_selection();
    f3_join();
    f4_fixpoint();
    f5_versions();
    f6_constraints();
    f7_triggers();
    f8_commit();
    f9_bufpool();
    f10_sets();
    a1_predicate();
    t1_telemetry();
    println!("\ndone.");
}
