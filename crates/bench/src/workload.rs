//! Deterministic workload builders shared by the benches and the
//! experiment report binary.
//!
//! All generators take explicit sizes and use a seeded RNG so every run
//! measures the same data. In-memory stores are used unless a bench
//! explicitly targets durability (F8) or the buffer pool (F9).

use std::path::PathBuf;

use ode_core::prelude::*;
use ode_model::SetValue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fixed RNG seed: benches must measure identical data every run.
pub const SEED: u64 = 0x0DE_5EED;

/// Suppliers used by the inventory workload (selectivity knobs).
pub const SUPPLIERS: &[&str] = &["at&t", "western", "ibm", "dec", "xerox"];

/// Build the stockitem schema on a database.
pub fn define_inventory(db: &Database) {
    db.define_class(
        ClassBuilder::new("stockitem")
            .field("name", Type::Str)
            .field_default("quantity", Type::Int, 0)
            .field_default("price", Type::Float, 1.0)
            .field("supplier", Type::Str),
    )
    .expect("schema");
    db.create_cluster("stockitem").expect("cluster");
}

/// Populate `n` stock items. `quantity` is uniform in `0..n` and
/// `supplier` cycles through [`SUPPLIERS`], so predicates with known
/// selectivity are easy to write.
pub fn fill_inventory(db: &Database, n: usize) -> Vec<Oid> {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut oids = Vec::with_capacity(n);
    let chunk = 4096;
    let mut i = 0usize;
    while i < n {
        let hi = (i + chunk).min(n);
        db.transaction(|tx| {
            for j in i..hi {
                let oid = tx.pnew(
                    "stockitem",
                    &[
                        ("name", Value::from(format!("part-{j:07}"))),
                        ("quantity", Value::Int(rng.gen_range(0..n as i64))),
                        ("price", Value::Float(rng.gen_range(0.5..50.0))),
                        ("supplier", Value::from(SUPPLIERS[j % SUPPLIERS.len()])),
                    ],
                )?;
                oids.push(oid);
            }
            Ok(())
        })
        .expect("fill");
        i = hi;
    }
    oids
}

/// In-memory inventory of `n` items, optionally indexed on `quantity`.
pub fn inventory_db(n: usize, index_quantity: bool) -> (Database, Vec<Oid>) {
    let db = Database::in_memory();
    define_inventory(&db);
    let oids = fill_inventory(&db, n);
    if index_quantity {
        db.create_index("stockitem", "quantity").expect("index");
    }
    (db, oids)
}

/// The university hierarchy (person/student/faculty/TA) with `per_class`
/// objects in each cluster.
pub fn university_db(per_class: usize) -> Database {
    let db = Database::in_memory();
    db.define_class(
        ClassBuilder::new("person")
            .field("name", Type::Str)
            .field_default("income", Type::Int, 0),
    )
    .unwrap();
    db.define_class(ClassBuilder::new("student").base("person").field_default(
        "stipend",
        Type::Int,
        0,
    ))
    .unwrap();
    db.define_class(ClassBuilder::new("faculty").base("person").field_default(
        "salary",
        Type::Int,
        0,
    ))
    .unwrap();
    db.define_class(
        ClassBuilder::new("teaching_assistant")
            .base("student")
            .base("faculty"),
    )
    .unwrap();
    for c in ["person", "student", "faculty", "teaching_assistant"] {
        db.create_cluster(c).unwrap();
    }
    let mut rng = StdRng::seed_from_u64(SEED);
    db.transaction(|tx| {
        for i in 0..per_class {
            let income = Value::Int(rng.gen_range(10_000..100_000));
            tx.pnew(
                "person",
                &[
                    ("name", Value::from(format!("p{i}"))),
                    ("income", income.clone()),
                ],
            )?;
            tx.pnew(
                "student",
                &[
                    ("name", Value::from(format!("s{i}"))),
                    ("income", income.clone()),
                ],
            )?;
            tx.pnew(
                "faculty",
                &[
                    ("name", Value::from(format!("f{i}"))),
                    ("income", income.clone()),
                ],
            )?;
            tx.pnew(
                "teaching_assistant",
                &[("name", Value::from(format!("t{i}"))), ("income", income)],
            )?;
        }
        Ok(())
    })
    .unwrap();
    db
}

/// employee ⋈ department workload: `n_emp` employees spread over `n_dept`
/// departments; employees carry both a foreign-key `deptno` (for value
/// joins) and a direct `dept` reference (for pointer navigation).
pub fn company_db(n_emp: usize, n_dept: usize, index_dno: bool) -> Database {
    let db = Database::in_memory();
    db.define_class(
        ClassBuilder::new("department")
            .field("dname", Type::Str)
            .field("dno", Type::Int),
    )
    .unwrap();
    db.define_class(
        ClassBuilder::new("employee")
            .field("ename", Type::Str)
            .field("deptno", Type::Int)
            .field("dept", Type::Ref("department".into())),
    )
    .unwrap();
    db.create_cluster("department").unwrap();
    db.create_cluster("employee").unwrap();
    let dept_oids: Vec<Oid> = db
        .transaction(|tx| {
            let mut v = Vec::new();
            for d in 0..n_dept {
                v.push(tx.pnew(
                    "department",
                    &[
                        ("dname", Value::from(format!("dept-{d}"))),
                        ("dno", Value::Int(d as i64)),
                    ],
                )?);
            }
            Ok(v)
        })
        .unwrap();
    let chunk = 4096;
    let mut i = 0;
    while i < n_emp {
        let hi = (i + chunk).min(n_emp);
        db.transaction(|tx| {
            for e in i..hi {
                let d = e % n_dept;
                tx.pnew(
                    "employee",
                    &[
                        ("ename", Value::from(format!("emp-{e}"))),
                        ("deptno", Value::Int(d as i64)),
                        ("dept", Value::Ref(dept_oids[d])),
                    ],
                )?;
            }
            Ok(())
        })
        .unwrap();
        i = hi;
    }
    if index_dno {
        db.create_index("department", "dno").unwrap();
    }
    db
}

/// A bill-of-materials chain: a root part with `depth` levels, `fanout`
/// children per part (children are shared across levels to keep the part
/// count linear). Returns (db, root name, number of distinct parts).
pub fn bom_db(depth: usize, fanout: usize) -> (Database, String, usize) {
    let db = Database::in_memory();
    db.define_class(
        ClassBuilder::new("usage")
            .field("parent", Type::Str)
            .field("child", Type::Str),
    )
    .unwrap();
    db.define_class(ClassBuilder::new("reached").field("part", Type::Str))
        .unwrap();
    db.define_class(ClassBuilder::new("worklist").field_default(
        "parts",
        Type::Set(Box::new(Type::Str)),
        Value::Set(SetValue::new()),
    ))
    .unwrap();
    for c in ["usage", "reached", "worklist"] {
        db.create_cluster(c).unwrap();
    }
    db.create_index("usage", "parent").unwrap();
    let mut parts = 1usize;
    db.transaction(|tx| {
        for level in 0..depth {
            for f in 0..fanout {
                let parent = if level == 0 {
                    "root".to_string()
                } else {
                    format!("part-{}-{}", level - 1, f)
                };
                let child = format!("part-{level}-{f}");
                tx.pnew(
                    "usage",
                    &[
                        ("parent", Value::from(parent.as_str())),
                        ("child", Value::from(child.as_str())),
                    ],
                )?;
            }
            parts += fanout;
        }
        Ok(())
    })
    .unwrap();
    (db, "root".to_string(), parts)
}

/// Edge list of a BOM as plain Rust data (for baseline evaluations).
pub fn bom_edges(db: &Database) -> Vec<(String, String)> {
    let mut edges = Vec::new();
    db.transaction(|tx| {
        tx.forall("usage")?.run(|tx, u| {
            edges.push((
                tx.get(u, "parent")?.as_str()?.to_string(),
                tx.get(u, "child")?.as_str()?.to_string(),
            ));
            Ok(())
        })?;
        Ok(())
    })
    .unwrap();
    edges
}

/// A document with a version chain of the given depth.
pub fn versioned_db(chain: usize) -> (Database, Oid) {
    let db = Database::in_memory();
    db.define_class(
        ClassBuilder::new("document")
            .field("title", Type::Str)
            .field_default("revision", Type::Int, 0),
    )
    .unwrap();
    db.create_cluster("document").unwrap();
    let oid = db
        .transaction(|tx| tx.pnew("document", &[("title", Value::from("spec"))]))
        .unwrap();
    db.transaction(|tx| {
        for i in 1..=chain {
            tx.newversion(oid)?;
            tx.set(oid, "revision", i as i64)?;
        }
        Ok(())
    })
    .unwrap();
    (db, oid)
}

/// Inventory whose class carries `n_constraints` always-true constraints.
pub fn constrained_db(n_constraints: usize) -> (Database, Oid) {
    let db = Database::in_memory();
    let mut b = ClassBuilder::new("stockitem")
        .field("name", Type::Str)
        .field_default("quantity", Type::Int, 100);
    for i in 0..n_constraints {
        b = b.constraint_named(format!("c{i}"), "quantity >= 0 && quantity <= 1000000");
    }
    db.define_class(b).unwrap();
    db.create_cluster("stockitem").unwrap();
    let oid = db
        .transaction(|tx| tx.pnew("stockitem", &[("name", Value::from("x"))]))
        .unwrap();
    (db, oid)
}

/// Inventory with one hot item carrying `hot` activations (with false
/// conditions) plus `cold` items with one activation each — scaling of
/// end-of-transaction trigger evaluation.
pub fn triggered_db(hot: usize, cold: usize) -> (Database, Oid) {
    let db = Database::in_memory();
    db.define_class(
        ClassBuilder::new("stockitem")
            .field("name", Type::Str)
            .field_default("quantity", Type::Int, 1_000)
            .trigger("never", &["floor"], true, "quantity < $floor")
            .action_assign("quantity", "quantity + 0"),
    )
    .unwrap();
    db.create_cluster("stockitem").unwrap();
    let hot_oid = db
        .transaction(|tx| {
            let hot_oid = tx.pnew("stockitem", &[("name", Value::from("hot"))])?;
            for _ in 0..hot {
                // floor 0: condition never true.
                tx.activate_trigger(hot_oid, "never", vec![Value::Int(0)])?;
            }
            Ok(hot_oid)
        })
        .unwrap();
    let chunk = 2048;
    let mut i = 0;
    while i < cold {
        let hi = (i + chunk).min(cold);
        db.transaction(|tx| {
            for c in i..hi {
                let oid = tx.pnew("stockitem", &[("name", Value::from(format!("cold-{c}")))])?;
                tx.activate_trigger(oid, "never", vec![Value::Int(0)])?;
            }
            Ok(())
        })
        .unwrap();
        i = hi;
    }
    (db, hot_oid)
}

/// A fresh temp directory for file-backed benches.
pub fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ode-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_is_deterministic() {
        let (db1, _) = inventory_db(100, false);
        let (db2, _) = inventory_db(100, false);
        let q1 = db1
            .transaction(|tx| {
                tx.forall("stockitem")?
                    .by("name")?
                    .collect_values("quantity")
            })
            .unwrap();
        let q2 = db2
            .transaction(|tx| {
                tx.forall("stockitem")?
                    .by("name")?
                    .collect_values("quantity")
            })
            .unwrap();
        assert_eq!(q1, q2);
    }

    #[test]
    fn company_pointer_and_value_joins_agree() {
        let db = company_db(60, 6, false);
        let via_value = db
            .transaction(|tx| {
                Ok(tx
                    .forall_join(&[("e", "employee"), ("d", "department")])?
                    .suchthat("e.deptno == d.dno")?
                    .collect()?
                    .len())
            })
            .unwrap();
        assert_eq!(via_value, 60);
    }

    #[test]
    fn bom_shape() {
        let (db, _, parts) = bom_db(4, 3);
        assert_eq!(parts, 13);
        assert_eq!(bom_edges(&db).len(), 12);
    }

    #[test]
    fn versioned_chain_depth() {
        let (db, oid) = versioned_db(8);
        db.transaction(|tx| {
            assert_eq!(tx.versions(oid)?.len(), 9);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn triggered_db_counts() {
        let (db, hot) = triggered_db(5, 10);
        let tx = db.begin();
        assert_eq!(tx.active_triggers(hot).len(), 5);
    }
}
