//! Integration tests for the decoupled trigger scheduler: decoupled
//! firing, exactly-once delivery across a simulated crash, trigger storms,
//! suspend/resume, dead-lettering with auto-suspension, timed (delayed)
//! firing, cascades through the queue, and live subscriptions.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ode_core::prelude::*;
use ode_sched::{SchedConfig, Scheduler, SubMatch};

/// The paper's active-inventory schema (§6), same shape as the core
/// trigger tests: a once-only reorder trigger and a perpetual callback
/// trigger.
fn inventory(db: &Database) {
    db.define_class(
        ClassBuilder::new("stockitem")
            .field("name", Type::Str)
            .field_default("quantity", Type::Int, 100)
            .field_default("reorder_level", Type::Int, 20)
            .field_default("on_order", Type::Int, 0)
            .trigger("reorder", &[], false, "quantity <= reorder_level")
            .action_assign("on_order", "on_order + 100")
            .trigger("low_stock", &["threshold"], true, "quantity < $threshold")
            .action_callback("notify"),
    )
    .unwrap();
    db.create_cluster("stockitem").unwrap();
}

fn new_item(db: &Database, name: &str) -> Oid {
    db.transaction(|tx| {
        let oid = tx.pnew("stockitem", &[("name", Value::from(name))])?;
        tx.activate_trigger(oid, "reorder", vec![])?;
        Ok(oid)
    })
    .unwrap()
}

fn manual_sched(db: &Arc<Database>) -> Arc<Scheduler> {
    Scheduler::attach(
        Arc::clone(db),
        SchedConfig {
            workers: 0,
            ..SchedConfig::default()
        },
    )
}

#[test]
fn commit_enqueues_instead_of_running_inline() {
    let db = Arc::new(Database::in_memory());
    inventory(&db);
    let oid = new_item(&db, "dram");
    let sched = Scheduler::attach(Arc::clone(&db), SchedConfig::default());

    let mut tx = db.begin();
    tx.set(oid, "quantity", 5i64).unwrap();
    let info = tx.commit().unwrap();
    // Decoupled: nothing ran inline, the firing was handed to the queue.
    assert!(info.fired.is_empty());
    assert_eq!(info.enqueued.len(), 1);
    assert_eq!(info.enqueued[0].trigger, "reorder");

    assert!(sched.wait_idle(Duration::from_secs(10)));
    let tx = db.begin();
    assert_eq!(tx.get(oid, "on_order").unwrap(), Value::Int(100));
    drop(tx);
    // The durable event was acknowledged by the action's own commit.
    assert!(db.pending_events().is_empty());
    assert_eq!(db.sched_telemetry().drained.get(), 1);
}

#[test]
fn detach_restores_inline_firing() {
    let db = Arc::new(Database::in_memory());
    inventory(&db);
    let oid = new_item(&db, "dram");
    let sched = Scheduler::attach(Arc::clone(&db), SchedConfig::default());
    drop(sched);

    let mut tx = db.begin();
    tx.set(oid, "quantity", 5i64).unwrap();
    let info = tx.commit().unwrap();
    assert_eq!(info.fired.len(), 1, "inline again after detach");
    assert!(info.enqueued.is_empty());
}

#[test]
fn crash_between_commit_and_drain_is_exactly_once() {
    // Satellite 3: a commit enqueues durably; the process dies before the
    // scheduler drains; on reopen the action runs exactly once — neither
    // lost nor doubled.
    let dir = std::env::temp_dir().join(format!("ode-sched-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let oid;
    {
        let db = Arc::new(Database::open(&dir).unwrap());
        inventory(&db);
        oid = new_item(&db, "dram");
        // workers: 0 — the queue exists but nothing drains it, so dropping
        // everything here is exactly a crash between commit and drain.
        let sched = manual_sched(&db);
        let mut tx = db.begin();
        tx.set(oid, "quantity", 5i64).unwrap();
        let info = tx.commit().unwrap();
        assert_eq!(info.enqueued.len(), 1);
        assert_eq!(db.pending_events().len(), 1);
        drop(sched);
        // "Crash": db dropped with the event still pending.
    }
    {
        let db = Arc::new(Database::open(&dir).unwrap());
        // Not lost: recovery resurrected the pending event, action not run.
        assert_eq!(db.pending_events().len(), 1);
        let tx = db.begin();
        assert_eq!(tx.get(oid, "on_order").unwrap(), Value::Int(0));
        drop(tx);
        let sched = manual_sched(&db);
        sched.drain_now();
        let tx = db.begin();
        assert_eq!(tx.get(oid, "on_order").unwrap(), Value::Int(100));
        drop(tx);
        assert!(db.pending_events().is_empty());
        // Not doubled: draining again is a no-op.
        sched.drain_now();
        let tx = db.begin();
        assert_eq!(tx.get(oid, "on_order").unwrap(), Value::Int(100));
    }
    {
        // And a third open finds a clean queue: the ack was durable too.
        let db = Arc::new(Database::open(&dir).unwrap());
        assert!(db.pending_events().is_empty());
        let sched = manual_sched(&db);
        sched.drain_now();
        let tx = db.begin();
        assert_eq!(tx.get(oid, "on_order").unwrap(), Value::Int(100));
        // The once-only activation was consumed by the original commit.
        assert!(tx.active_triggers(oid).is_empty());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trigger_storm_runs_every_action() {
    // A batch commit arming many triggers at once: the commit returns
    // promptly (everything queued) and every action eventually runs.
    let n: usize = std::env::var("ODE_STORM_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let db = Arc::new(Database::in_memory());
    inventory(&db);
    let oids: Vec<Oid> = db
        .transaction(|tx| {
            (0..n)
                .map(|i| {
                    let oid = tx.pnew("stockitem", &[("name", Value::from(format!("it{i}")))])?;
                    tx.activate_trigger(oid, "reorder", vec![])?;
                    Ok(oid)
                })
                .collect()
        })
        .unwrap();
    let sched = Scheduler::attach(
        Arc::clone(&db),
        SchedConfig {
            workers: 4,
            ..SchedConfig::default()
        },
    );
    let mut tx = db.begin();
    for &oid in &oids {
        tx.set(oid, "quantity", 1i64).unwrap();
    }
    let info = tx.commit().unwrap();
    assert_eq!(info.enqueued.len(), n);

    assert!(sched.wait_idle(Duration::from_secs(120)), "storm drained");
    assert_eq!(db.sched_telemetry().drained.get() as usize, n);
    assert!(db.pending_events().is_empty());
    let tx = db.begin();
    for &oid in oids.iter().step_by((n / 50).max(1)) {
        assert_eq!(tx.get(oid, "on_order").unwrap(), Value::Int(100));
    }
    drop(tx);
    assert!(sched.dead_letters().is_empty());
}

#[test]
fn suspend_parks_and_resume_replays() {
    let db = Arc::new(Database::in_memory());
    inventory(&db);
    let oid = new_item(&db, "dram");
    let sched = manual_sched(&db);
    sched.suspend("reorder");

    let mut tx = db.begin();
    tx.set(oid, "quantity", 5i64).unwrap();
    tx.commit().unwrap();
    sched.drain_now();
    // Parked, not run, not acknowledged.
    let tx = db.begin();
    assert_eq!(tx.get(oid, "on_order").unwrap(), Value::Int(0));
    drop(tx);
    assert_eq!(db.pending_events().len(), 1);
    let rows = sched.status_rows();
    let parked = rows.iter().find(|(k, _)| k == "sched.parked").unwrap();
    assert_eq!(parked.1, "1");
    let susp = rows.iter().find(|(k, _)| k == "sched.suspended").unwrap();
    assert_eq!(susp.1, "reorder");

    sched.resume("reorder");
    sched.drain_now();
    let tx = db.begin();
    assert_eq!(tx.get(oid, "on_order").unwrap(), Value::Int(100));
    drop(tx);
    assert!(db.pending_events().is_empty());
}

#[test]
fn permanent_failures_dead_letter_and_auto_suspend() {
    let db = Arc::new(Database::in_memory());
    inventory(&db);
    // "notify" is never registered: every low_stock action fails
    // permanently (not a transient Unavailable), so each event is
    // dead-lettered, and after the threshold the trigger is suspended.
    let oid = db
        .transaction(|tx| {
            let oid = tx.pnew("stockitem", &[("name", Value::from("dram"))])?;
            tx.activate_trigger(oid, "low_stock", vec![Value::Int(50)])?;
            Ok(oid)
        })
        .unwrap();
    let sched = Scheduler::attach(
        Arc::clone(&db),
        SchedConfig {
            workers: 0,
            fail_suspend_threshold: 2,
            ..SchedConfig::default()
        },
    );
    for qty in [10i64, 9] {
        let mut tx = db.begin();
        tx.set(oid, "quantity", qty).unwrap();
        tx.commit().unwrap();
        sched.drain_now();
    }
    let letters = sched.dead_letters();
    assert_eq!(letters.len(), 2);
    assert!(letters[0].error.contains("notify"), "{}", letters[0].error);
    assert_eq!(db.sched_telemetry().dead_letters.get(), 2);
    // Threshold reached: now suspended, the next event parks instead.
    assert_eq!(db.sched_telemetry().suspended.get(), 1);
    let mut tx = db.begin();
    tx.set(oid, "quantity", 8i64).unwrap();
    tx.commit().unwrap();
    sched.drain_now();
    assert_eq!(sched.dead_letters().len(), 2, "parked, not dead-lettered");
    assert_eq!(db.pending_events().len(), 1);
    // Dead-lettered events were acknowledged: only the parked one is
    // pending, so a reopen would retry exactly that one.
}

#[test]
fn delayed_trigger_fires_after_its_delay() {
    let db = Arc::new(Database::in_memory());
    inventory(&db);
    let oid = new_item(&db, "dram");
    let sched = Scheduler::attach(Arc::clone(&db), SchedConfig::default());
    sched.delay_trigger("reorder", Duration::from_millis(200));

    let start = Instant::now();
    let mut tx = db.begin();
    tx.set(oid, "quantity", 5i64).unwrap();
    tx.commit().unwrap();
    // Well before the delay elapses the action must not have run.
    std::thread::sleep(Duration::from_millis(40));
    let tx = db.begin();
    assert_eq!(tx.get(oid, "on_order").unwrap(), Value::Int(0));
    drop(tx);
    assert!(sched.wait_idle(Duration::from_secs(10)));
    assert!(
        start.elapsed() >= Duration::from_millis(200),
        "fired early: {:?}",
        start.elapsed()
    );
    let tx = db.begin();
    assert_eq!(tx.get(oid, "on_order").unwrap(), Value::Int(100));
}

#[test]
fn bounded_cascade_drains_through_the_queue() {
    let db = Arc::new(Database::in_memory());
    db.define_class(
        ClassBuilder::new("counter")
            .field_default("n", Type::Int, 0)
            .trigger("bump", &[], true, "n < 5")
            .action_assign("n", "n + 1"),
    )
    .unwrap();
    db.create_cluster("counter").unwrap();
    let sched = manual_sched(&db);
    let mut tx = db.begin();
    let oid = tx.pnew("counter", &[]).unwrap();
    tx.activate_trigger(oid, "bump", vec![]).unwrap();
    tx.set(oid, "n", 1i64).unwrap();
    let info = tx.commit().unwrap();
    assert_eq!(info.enqueued.len(), 1);
    sched.drain_now();
    // Each action re-fired the perpetual trigger until the condition went
    // false; every link in the chain went through the queue.
    let tx = db.begin();
    assert_eq!(tx.get(oid, "n").unwrap(), Value::Int(5));
    drop(tx);
    assert_eq!(db.sched_telemetry().drained.get(), 4);
    assert!(db.pending_events().is_empty());
    assert!(sched.dead_letters().is_empty());
}

#[test]
fn runaway_cascade_hits_the_limit_and_dead_letters() {
    let db = Arc::new(Database::in_memory());
    db.define_class(
        ClassBuilder::new("counter")
            .field_default("n", Type::Int, 0)
            .trigger("bump", &[], true, "n >= 0") // never goes false
            .action_assign("n", "n + 1"),
    )
    .unwrap();
    db.create_cluster("counter").unwrap();
    let sched = manual_sched(&db);
    let mut tx = db.begin();
    let oid = tx.pnew("counter", &[]).unwrap();
    tx.activate_trigger(oid, "bump", vec![]).unwrap();
    tx.commit().unwrap();
    sched.drain_now();
    // The chain was cut at the cascade limit: the over-limit event is
    // dead-lettered with the typed error and the counter recorded it.
    let letters = sched.dead_letters();
    assert_eq!(letters.len(), 1);
    assert!(
        letters[0].error.contains("cascade"),
        "typed cascade error expected, got: {}",
        letters[0].error
    );
    assert!(db.sched_telemetry().dead_letters.get() >= 1);
    assert_eq!(db.telemetry().triggers.cascade_exhausted, 1);
    // Progress was real up to the limit, and the queue is clean.
    let tx = db.begin();
    assert!(tx.get(oid, "n").unwrap().as_int().unwrap() > 0);
    drop(tx);
    assert!(db.pending_events().is_empty());
}

#[test]
fn subscription_pushes_matching_commits() {
    let db = Arc::new(Database::in_memory());
    inventory(&db);
    let oid = db
        .transaction(|tx| tx.pnew("stockitem", &[("name", Value::from("dram"))]))
        .unwrap();
    let sched = Scheduler::attach(Arc::clone(&db), SchedConfig::default());
    let matches: Arc<Mutex<Vec<SubMatch>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_matches = Arc::clone(&matches);
    let sub_id = sched
        .subscribe(
            "stockitem",
            "quantity < 20",
            Arc::new(move |m| sink_matches.lock().unwrap().push(m.clone())),
        )
        .unwrap();

    // Non-matching write: checked, no push.
    let mut tx = db.begin();
    tx.set(oid, "quantity", 50i64).unwrap();
    tx.commit().unwrap();
    assert!(sched.wait_idle(Duration::from_secs(10)));
    assert!(matches.lock().unwrap().is_empty());

    // Matching write: exactly one push, carrying the object and epoch.
    let mut tx = db.begin();
    tx.set(oid, "quantity", 10i64).unwrap();
    tx.commit().unwrap();
    assert!(sched.wait_idle(Duration::from_secs(10)));
    let got = matches.lock().unwrap().clone();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].sub_id, sub_id);
    assert_eq!(got[0].oid, oid);
    assert!(got[0].epoch > 0);

    // After unsubscribe, matching writes push nothing.
    assert!(sched.unsubscribe(sub_id));
    let mut tx = db.begin();
    tx.set(oid, "quantity", 5i64).unwrap();
    tx.commit().unwrap();
    assert!(sched.wait_idle(Duration::from_secs(10)));
    assert_eq!(matches.lock().unwrap().len(), 1);
}

#[test]
fn subscription_respects_subclass_extent() {
    let db = Arc::new(Database::in_memory());
    db.define_class(ClassBuilder::new("item").field_default("qty", Type::Int, 100))
        .unwrap();
    db.define_class(
        ClassBuilder::new("special")
            .base("item")
            .field("tag", Type::Str),
    )
    .unwrap();
    db.define_class(ClassBuilder::new("other").field_default("qty", Type::Int, 100))
        .unwrap();
    db.create_cluster("item").unwrap();
    db.create_cluster("special").unwrap();
    db.create_cluster("other").unwrap();
    let sched = Scheduler::attach(Arc::clone(&db), SchedConfig::default());
    let hits = Arc::new(AtomicUsize::new(0));
    let sink_hits = Arc::clone(&hits);
    sched
        .subscribe(
            "item",
            "qty < 10",
            Arc::new(move |_m| {
                sink_hits.fetch_add(1, Ordering::SeqCst);
            }),
        )
        .unwrap();
    db.transaction(|tx| {
        // A subclass instance matches (deep extent)…
        tx.pnew(
            "special",
            &[("tag", Value::from("s")), ("qty", Value::Int(5))],
        )?;
        // …an unrelated class does not, even with a satisfying field.
        tx.pnew("other", &[("qty", Value::Int(5))])?;
        Ok(())
    })
    .unwrap();
    assert!(sched.wait_idle(Duration::from_secs(10)));
    assert_eq!(hits.load(Ordering::SeqCst), 1);
}

#[test]
fn reattach_after_detach_keeps_working() {
    let db = Arc::new(Database::in_memory());
    inventory(&db);
    let oid = new_item(&db, "dram");
    let first = Scheduler::attach(Arc::clone(&db), SchedConfig::default());
    first.detach();
    let second = Scheduler::attach(Arc::clone(&db), SchedConfig::default());
    let mut tx = db.begin();
    tx.set(oid, "quantity", 5i64).unwrap();
    let info = tx.commit().unwrap();
    assert_eq!(info.enqueued.len(), 1);
    assert!(second.wait_idle(Duration::from_secs(10)));
    let tx = db.begin();
    assert_eq!(tx.get(oid, "on_order").unwrap(), Value::Int(100));
}
