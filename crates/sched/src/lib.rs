//! # ode-sched
//!
//! The decoupled trigger scheduler. §6's weak coupling already runs
//! trigger actions *after* the triggering commit — but the seed engine
//! still ran them inline on the committing thread, so a commit that armed
//! a slow cascade paid the cascade's full latency. This crate moves the
//! actions off the commit path entirely (HiPAC's decoupled mode):
//!
//! * a committing transaction durably enqueues [`PendingEvent`]s (the
//!   engine's firing sink) and returns immediately,
//! * a worker pool drains the queue, running each action in its own write
//!   transaction via [`Database::dispatch_firing`] — once-only semantics
//!   and the cascade bound are enforced by the engine, exactly-once across
//!   crashes by the durable pending record,
//! * transient failures retry with backoff; persistent ones dead-letter
//!   (the event is acknowledged so it cannot replay forever), and a
//!   trigger that fails repeatedly is auto-suspended,
//! * per-trigger delay turns an armed trigger into a *timed* firing: the
//!   event sits in a timer heap until due,
//! * **live subscriptions** ride the same queue: a registered predicate
//!   over a cluster is re-evaluated (on a worker, against a snapshot)
//!   for every object a commit writes, and matches are delivered to the
//!   subscriber's push sink — the server turns them into wire Push frames.
//!
//! Attach with [`Scheduler::attach`]; detaching (drop) uninstalls the
//! engine hooks and re-enables inline firing. With `workers: 0` nothing
//! runs until [`Scheduler::drain_now`] — tests use this to simulate a
//! crash between commit and drain.

use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, RwLock};

use ode_core::{Database, OdeError, PendingEvent, Result};
use ode_model::eval::EvalCtx;
use ode_model::{parse_expr, ClassId, Expr, Oid};
use ode_obs::SpanStage;

/// Tuning knobs for [`Scheduler::attach`].
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Worker threads draining the queue. `0` = nothing runs until
    /// [`Scheduler::drain_now`] (tests; simulated crashes).
    pub workers: usize,
    /// Queue capacity for *subscription checks*. Checks past it are
    /// dropped (counted in `sched.overflow_dropped`); trigger events are
    /// never dropped — they are durable and their backlog lives on disk.
    pub queue_capacity: usize,
    /// Transient-failure retries per event before dead-lettering.
    pub max_retries: u32,
    /// Backoff between retries of one event.
    pub retry_backoff: Duration,
    /// Consecutive permanent failures of one trigger name before the
    /// scheduler auto-suspends it (0 disables auto-suspension).
    pub fail_suspend_threshold: u32,
    /// Most recent dead letters retained for inspection.
    pub max_dead_letters: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            workers: 2,
            queue_capacity: 16 * 1024,
            max_retries: 3,
            retry_backoff: Duration::from_millis(10),
            fail_suspend_threshold: 5,
            max_dead_letters: 256,
        }
    }
}

/// Handle returned by [`Scheduler::subscribe`].
pub type SubId = u64;

/// One subscription match, delivered to the subscriber's push sink from a
/// worker thread.
#[derive(Debug, Clone, PartialEq)]
pub struct SubMatch {
    /// The subscription that matched.
    pub sub_id: SubId,
    /// The object that satisfied the predicate.
    pub oid: Oid,
    /// Commit epoch of the write that triggered the check.
    pub epoch: u64,
}

/// Callback receiving subscription matches. Must be cheap and must not
/// commit a write transaction synchronously (it runs on a worker thread
/// holding no engine lock, but a slow sink stalls the queue).
pub type PushSink = Arc<dyn Fn(&SubMatch) + Send + Sync>;

/// An event the scheduler gave up on. The underlying pending record has
/// been acknowledged: the action will not run.
#[derive(Debug, Clone)]
pub struct DeadLetter {
    /// The abandoned event.
    pub event: PendingEvent,
    /// Why it was abandoned.
    pub error: String,
}

struct Subscription {
    class: ClassId,
    predicate: Expr,
    sink: PushSink,
}

enum Job {
    Action {
        event: PendingEvent,
        attempts: u32,
        enqueued_at: Instant,
    },
    SubCheck {
        sub_id: SubId,
        oid: Oid,
        epoch: u64,
    },
}

struct TimedJob {
    due: Instant,
    seq: u64,
    job: Job,
}

impl PartialEq for TimedJob {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for TimedJob {}
impl PartialOrd for TimedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest due is on top.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Default)]
struct QueueState {
    queue: VecDeque<Job>,
    timed: BinaryHeap<TimedJob>,
    /// Actions parked because their trigger is suspended.
    parked: Vec<Job>,
    in_flight: usize,
    shutdown: bool,
}

struct SchedInner {
    db: Arc<Database>,
    config: SchedConfig,
    state: Mutex<QueueState>,
    work_ready: Condvar,
    idle: Condvar,
    subs: RwLock<HashMap<SubId, Subscription>>,
    suspended: RwLock<HashSet<String>>,
    /// Per-trigger-name firing delay (timed triggers, §6).
    delays: RwLock<HashMap<String, Duration>>,
    /// Per-trigger-name consecutive permanent failures (auto-suspension).
    failures: RwLock<HashMap<String, u32>>,
    dead: Mutex<VecDeque<DeadLetter>>,
    next_sub: AtomicU64,
    next_seq: AtomicU64,
    detached: AtomicBool,
}

impl SchedInner {
    fn seq(&self) -> u64 {
        self.next_seq.fetch_add(1, Ordering::Relaxed)
    }

    fn note_depth(&self, st: &QueueState) {
        let tel = self.db.sched_telemetry();
        let depth = (st.queue.len() + st.timed.len()) as u64;
        tel.queue_depth.set(depth);
        tel.queue_high_water.observe(depth);
    }

    /// Enqueue trigger events (from the commit sink, a cascade, or the
    /// recovered backlog). Never drops: the durable pending record is the
    /// true bound.
    fn enqueue_events(&self, events: Vec<PendingEvent>, count_enqueued: bool) {
        if events.is_empty() {
            return;
        }
        let now = Instant::now();
        let mut st = self.state.lock();
        if st.shutdown {
            return; // backlog survives in the pending record for reattach
        }
        if count_enqueued {
            self.db.sched_telemetry().enqueued.add(events.len() as u64);
        }
        let delays = self.delays.read();
        for event in events {
            let delay = delays.get(&event.trigger).copied();
            let job = Job::Action {
                event,
                attempts: 0,
                enqueued_at: now,
            };
            match delay {
                Some(d) if !d.is_zero() => {
                    let seq = self.seq();
                    st.timed.push(TimedJob {
                        due: now + d,
                        seq,
                        job,
                    });
                }
                _ => st.queue.push_back(job),
            }
        }
        drop(delays);
        self.note_depth(&st);
        self.work_ready.notify_all();
    }

    fn enqueue_timed(&self, job: Job, due: Instant) {
        let mut st = self.state.lock();
        if st.shutdown {
            return;
        }
        let seq = self.seq();
        st.timed.push(TimedJob { due, seq, job });
        self.note_depth(&st);
        self.work_ready.notify_all();
    }

    /// Fan a committed write set out into subscription checks.
    fn observe_commit(&self, note: &ode_core::CommitNote) {
        let subs = self.subs.read();
        if subs.is_empty() {
            return;
        }
        let mut checks: Vec<Job> = Vec::new();
        self.db.with_schema(|schema| {
            for &(oid, class) in &note.writes {
                for (&sub_id, sub) in subs.iter() {
                    if schema.is_subclass(class, sub.class) {
                        checks.push(Job::SubCheck {
                            sub_id,
                            oid,
                            epoch: note.epoch,
                        });
                    }
                }
            }
        });
        drop(subs);
        if checks.is_empty() {
            return;
        }
        let mut st = self.state.lock();
        if st.shutdown {
            return;
        }
        let tel = self.db.sched_telemetry();
        for job in checks {
            if st.queue.len() >= self.config.queue_capacity {
                tel.overflow_dropped.inc();
                continue;
            }
            st.queue.push_back(job);
        }
        self.note_depth(&st);
        self.work_ready.notify_all();
    }

    /// Pull one runnable job, promoting due timed jobs first. Returns
    /// `Err(next_due)` when only not-yet-due timed work remains.
    fn next_job(st: &mut QueueState) -> std::result::Result<Option<Job>, Instant> {
        let now = Instant::now();
        while let Some(t) = st.timed.peek() {
            if t.due <= now {
                let t = st.timed.pop().expect("peeked");
                st.queue.push_back(t.job);
            } else {
                break;
            }
        }
        if let Some(job) = st.queue.pop_front() {
            return Ok(Some(job));
        }
        match st.timed.peek() {
            Some(t) => Err(t.due),
            None => Ok(None),
        }
    }

    fn worker_loop(self: &Arc<Self>) {
        loop {
            let job = {
                let mut st = self.state.lock();
                loop {
                    if st.shutdown {
                        return;
                    }
                    match Self::next_job(&mut st) {
                        Ok(Some(job)) => {
                            st.in_flight += 1;
                            self.note_depth(&st);
                            break job;
                        }
                        Ok(None) => {
                            if st.in_flight == 0 {
                                self.idle.notify_all();
                            }
                            self.work_ready.wait(&mut st);
                        }
                        Err(due) => {
                            let now = Instant::now();
                            let wait = due.saturating_duration_since(now);
                            self.work_ready.wait_for(&mut st, wait);
                        }
                    }
                }
            };
            self.run_job(job);
            let mut st = self.state.lock();
            st.in_flight -= 1;
            if st.in_flight == 0 && st.queue.is_empty() && st.timed.is_empty() {
                self.idle.notify_all();
            }
        }
    }

    fn run_job(self: &Arc<Self>, job: Job) {
        match job {
            Job::Action {
                event,
                attempts,
                enqueued_at,
            } => self.run_action(event, attempts, enqueued_at),
            Job::SubCheck { sub_id, oid, epoch } => self.run_sub_check(sub_id, oid, epoch),
        }
    }

    fn run_action(self: &Arc<Self>, event: PendingEvent, attempts: u32, enqueued_at: Instant) {
        // A suspended trigger parks its events; `resume` re-queues them.
        if self.suspended.read().contains(&event.trigger) {
            let mut st = self.state.lock();
            st.parked.push(Job::Action {
                event,
                attempts,
                enqueued_at,
            });
            return;
        }
        let tel = self.db.sched_telemetry();
        let mut span = self
            .db
            .flight()
            .span(SpanStage::Sched, event.trigger.as_str());
        match self.db.dispatch_firing(&event) {
            Ok(next) => {
                tel.drained.inc();
                tel.drain_lag
                    .record_ns(enqueued_at.elapsed().as_nanos() as u64);
                self.failures.write().remove(&event.trigger);
                span.set_detail(format!("{} ok, {} cascaded", event.trigger, next.len()));
                // Cascade: the action's own commit persisted these in its
                // batch; queue them like a commit sink would.
                self.enqueue_events(next, true);
            }
            Err(e) if e.is_unavailable() && attempts < self.config.max_retries => {
                tel.retries.inc();
                span.set_detail(format!("{} retry #{}", event.trigger, attempts + 1));
                let due = Instant::now() + self.config.retry_backoff;
                self.enqueue_timed(
                    Job::Action {
                        event,
                        attempts: attempts + 1,
                        enqueued_at,
                    },
                    due,
                );
            }
            Err(e) => {
                span.set_detail(format!("{} dead-letter: {e}", event.trigger));
                self.dead_letter(event, e);
            }
        }
    }

    /// Abandon an event: acknowledge it durably (unless the engine already
    /// did — `ack_pending` is a no-op for unknown ids) and record why.
    fn dead_letter(self: &Arc<Self>, event: PendingEvent, error: OdeError) {
        let tel = self.db.sched_telemetry();
        tel.dead_letters.inc();
        if let Err(ack_err) = self.db.ack_pending(&[event.id]) {
            // The event stays pending; it will be retried after reopen.
            // Record both errors so the operator sees the whole story.
            self.push_dead(DeadLetter {
                event,
                error: format!("{error} (ack failed: {ack_err})"),
            });
            return;
        }
        // Auto-suspension: a trigger that keeps failing permanently stops
        // burning workers until an operator resumes it.
        let threshold = self.config.fail_suspend_threshold;
        if threshold > 0 {
            let mut failures = self.failures.write();
            let n = failures.entry(event.trigger.clone()).or_insert(0);
            *n += 1;
            if *n >= threshold {
                failures.remove(&event.trigger);
                drop(failures);
                self.suspend(&event.trigger);
            }
        }
        self.push_dead(DeadLetter {
            event,
            error: error.to_string(),
        });
    }

    fn push_dead(&self, letter: DeadLetter) {
        let mut dead = self.dead.lock();
        dead.push_back(letter);
        while dead.len() > self.config.max_dead_letters {
            dead.pop_front();
        }
    }

    fn run_sub_check(&self, sub_id: SubId, oid: Oid, epoch: u64) {
        let subs = self.subs.read();
        let Some(sub) = subs.get(&sub_id) else {
            return; // unsubscribed while queued
        };
        let matched = self.db.read(|rtx| {
            let Ok(state) = rtx.read(oid) else {
                return Ok(false); // deleted between commit and check
            };
            rtx.database().with_schema(|schema| {
                EvalCtx::new(schema)
                    .with_this(&state)
                    .with_resolver(rtx)
                    .eval_bool(&sub.predicate)
                    .map_err(Into::into)
            })
        });
        if matches!(matched, Ok(true)) {
            (sub.sink)(&SubMatch { sub_id, oid, epoch });
        }
    }

    fn suspend(&self, trigger: &str) {
        if self.suspended.write().insert(trigger.to_string()) {
            self.db.sched_telemetry().suspended.inc();
        }
    }

    fn resume(&self, trigger: &str) {
        if self.suspended.write().remove(trigger) {
            self.db.sched_telemetry().suspended.dec();
        }
        self.failures.write().remove(trigger);
        let mut st = self.state.lock();
        let parked = std::mem::take(&mut st.parked);
        for job in parked {
            match &job {
                Job::Action { event, .. } if event.trigger == trigger => {
                    st.queue.push_back(job);
                }
                _ => st.parked.push(job),
            }
        }
        self.note_depth(&st);
        self.work_ready.notify_all();
    }

    fn status_rows(&self) -> Vec<(String, String)> {
        let st = self.state.lock();
        let mut rows = vec![
            ("sched.workers".to_string(), self.config.workers.to_string()),
            ("sched.queue_depth".to_string(), st.queue.len().to_string()),
            ("sched.timed".to_string(), st.timed.len().to_string()),
            ("sched.parked".to_string(), st.parked.len().to_string()),
            ("sched.in_flight".to_string(), st.in_flight.to_string()),
        ];
        drop(st);
        let suspended = self.suspended.read();
        let mut names: Vec<&String> = suspended.iter().collect();
        names.sort();
        rows.push((
            "sched.suspended".to_string(),
            if names.is_empty() {
                "-".to_string()
            } else {
                names
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(",")
            },
        ));
        drop(suspended);
        rows.push((
            "sched.dead_letters".to_string(),
            self.dead.lock().len().to_string(),
        ));
        rows.push((
            "sched.subscriptions".to_string(),
            self.subs.read().len().to_string(),
        ));
        rows
    }
}

/// The decoupled scheduler. Attaching installs the engine hooks (firing
/// sink, commit observer, status hook), drains any backlog recovered from
/// the durable pending record, and spawns the worker pool. Dropping the
/// scheduler detaches: hooks are uninstalled (firing goes back inline),
/// workers are joined; an undrained backlog stays durable for the next
/// attach.
pub struct Scheduler {
    inner: Arc<SchedInner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Attach a scheduler to `db` and switch the engine to decoupled
    /// firing. Any backlog recovered at open (a crash between commit and
    /// drain) is queued immediately.
    pub fn attach(db: Arc<Database>, config: SchedConfig) -> Arc<Scheduler> {
        let inner = Arc::new(SchedInner {
            db: Arc::clone(&db),
            config: config.clone(),
            state: Mutex::new(QueueState::default()),
            work_ready: Condvar::new(),
            idle: Condvar::new(),
            subs: RwLock::new(HashMap::new()),
            suspended: RwLock::new(HashSet::new()),
            delays: RwLock::new(HashMap::new()),
            failures: RwLock::new(HashMap::new()),
            dead: Mutex::new(VecDeque::new()),
            next_sub: AtomicU64::new(1),
            next_seq: AtomicU64::new(1),
            detached: AtomicBool::new(false),
        });
        // Hooks hold Weak: the database must not keep its scheduler alive
        // (the scheduler holds the database).
        let sink_inner: Weak<SchedInner> = Arc::downgrade(&inner);
        db.set_firing_sink(Some(Arc::new(move |events| {
            if let Some(s) = sink_inner.upgrade() {
                s.enqueue_events(events, false);
            }
        })));
        let obs_inner: Weak<SchedInner> = Arc::downgrade(&inner);
        db.set_commit_observer(Some(Arc::new(move |note| {
            if let Some(s) = obs_inner.upgrade() {
                s.observe_commit(note);
            }
        })));
        let hook_inner: Weak<SchedInner> = Arc::downgrade(&inner);
        db.set_sched_status_hook(Some(Arc::new(move || {
            hook_inner
                .upgrade()
                .map(|s| s.status_rows())
                .unwrap_or_default()
        })));
        // Recovered backlog: events a previous process enqueued but never
        // acknowledged. They were counted as enqueued by their own commits,
        // so count them again here only in the queue gauge, not the
        // enqueued counter... except after reopen the counter is fresh —
        // count them so enqueued-drained still measures the backlog.
        inner.enqueue_events(db.pending_events(), true);
        let sched = Arc::new(Scheduler {
            inner: Arc::clone(&inner),
            workers: Mutex::new(Vec::new()),
        });
        let mut workers = sched.workers.lock();
        for i in 0..config.workers {
            let w = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("ode-sched-{i}"))
                    .spawn(move || w.worker_loop())
                    .expect("spawn scheduler worker"),
            );
        }
        drop(workers);
        sched
    }

    /// The database this scheduler drives.
    pub fn database(&self) -> &Arc<Database> {
        &self.inner.db
    }

    /// Register a live subscription: `predicate` (an O++ boolean
    /// expression over the object's fields) is evaluated against every
    /// object of `class_name` (deep extent) written by any commit, and
    /// matches are delivered to `sink` asynchronously.
    pub fn subscribe(&self, class_name: &str, predicate: &str, sink: PushSink) -> Result<SubId> {
        let class = self
            .inner
            .db
            .with_schema(|schema| schema.id_of(class_name))?;
        let predicate = parse_expr(predicate)?;
        let id = self.inner.next_sub.fetch_add(1, Ordering::Relaxed);
        self.inner.subs.write().insert(
            id,
            Subscription {
                class,
                predicate,
                sink,
            },
        );
        Ok(id)
    }

    /// Remove a subscription. Checks already queued for it are dropped
    /// when dequeued.
    pub fn unsubscribe(&self, id: SubId) -> bool {
        self.inner.subs.write().remove(&id).is_some()
    }

    /// Delay every firing of `trigger` by `delay` (timed firing, §6's
    /// `within`-style deferral): its events sit in the timer heap until
    /// due. Applies to events enqueued after the call; a zero delay
    /// restores immediate firing.
    pub fn delay_trigger(&self, trigger: &str, delay: Duration) {
        if delay.is_zero() {
            self.inner.delays.write().remove(trigger);
        } else {
            self.inner.delays.write().insert(trigger.to_string(), delay);
        }
    }

    /// Suspend a trigger: its queued and future events park until
    /// [`Scheduler::resume`].
    pub fn suspend(&self, trigger: &str) {
        self.inner.suspend(trigger);
    }

    /// Resume a suspended trigger and re-queue its parked events.
    pub fn resume(&self, trigger: &str) {
        self.inner.resume(trigger);
    }

    /// Events the scheduler abandoned (acknowledged without running).
    pub fn dead_letters(&self) -> Vec<DeadLetter> {
        self.inner.dead.lock().iter().cloned().collect()
    }

    /// Status rows (the `.triggers` surface).
    pub fn status_rows(&self) -> Vec<(String, String)> {
        self.inner.status_rows()
    }

    /// Block until the queue is empty and no action is in flight, or the
    /// timeout elapses. Returns whether the scheduler went idle.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock();
        loop {
            if st.queue.is_empty() && st.timed.is_empty() && st.in_flight == 0 {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.inner
                .idle
                .wait_for(&mut st, deadline.saturating_duration_since(now));
        }
    }

    /// Synchronously drain the queue on the caller's thread (for
    /// `workers: 0` configurations). Sleeps through timer-heap waits; runs
    /// until the queue, timer heap, and cascade tail are all empty.
    pub fn drain_now(&self) {
        loop {
            let job = {
                let mut st = self.inner.state.lock();
                match SchedInner::next_job(&mut st) {
                    Ok(Some(job)) => {
                        st.in_flight += 1;
                        Some(job)
                    }
                    Ok(None) => {
                        if st.in_flight == 0 {
                            self.inner.idle.notify_all();
                        }
                        return;
                    }
                    Err(due) => {
                        drop(st);
                        std::thread::sleep(due.saturating_duration_since(Instant::now()));
                        None
                    }
                }
            };
            if let Some(job) = job {
                self.inner.run_job(job);
                let mut st = self.inner.state.lock();
                st.in_flight -= 1;
            }
        }
    }

    /// Uninstall the engine hooks and stop the workers. Called by `Drop`;
    /// public so embedders can detach deterministically. An undrained
    /// backlog stays durable in the pending record.
    pub fn detach(&self) {
        if self.inner.detached.swap(true, Ordering::SeqCst) {
            return;
        }
        let db = &self.inner.db;
        db.set_firing_sink(None);
        db.set_commit_observer(None);
        db.set_sched_status_hook(None);
        {
            let mut st = self.inner.state.lock();
            st.shutdown = true;
            self.inner.work_ready.notify_all();
            self.inner.idle.notify_all();
        }
        for handle in self.workers.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.detach();
    }
}
