//! # ode-shell
//!
//! The interactive *environment* half of "Object Database and
//! Environment": a REPL session over an Ode database. One statement per
//! input (class declarations may span lines until their braces balance),
//! each statement auto-committed as its own transaction — mirroring the
//! paper's "any O++ program that interacts with the database is a single
//! transaction" stance at statement granularity.
//!
//! Supported input:
//!
//! * **DDL** — `class … { … }` declarations (O++ syntax, see
//!   `ode_model::ddl`), `create cluster <class>`,
//!   `create index <class> <field>`, `destroy cluster <class>`,
//! * **queries** — `forall …` statements (printed as a table),
//! * **DML** — `pnew …`, `update … set …`, `delete …`,
//! * **meta commands** — `.help`, `.classes`, `.describe <class>`,
//!   `.clusters`, `.indexes`, `.show <oid>`, `.versions <oid>`, `.exit`.

use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

use ode_core::batch_interference;
use ode_core::obs::flight::{current_trace, set_trace};
use ode_core::obs::{prom, render_spans, SlowQuery, SpanStage, TraceId};
use ode_core::oql::{ExecResult, QueryRows};
use ode_core::prelude::*;
use ode_core::TriggerId;
use ode_model::{Oid, VersionRef};
use ode_storage::RecordId;

/// A live shell session over one (possibly shared) database. Sessions
/// hold the database behind an [`Arc`], so any number of them — local
/// REPLs, `ode-server` connections — can run over the same engine.
pub struct Session {
    db: Arc<Database>,
    /// Buffered partial input (multi-line class declarations).
    pending: String,
    /// Set by `.exit`.
    done: bool,
    /// Trace id of the most recent statement (what a bare `.trace`
    /// shows). Inherited from the wire frame when the server set a trace
    /// context, minted locally otherwise.
    last_trace: TraceId,
}

/// Outcome of feeding one line to the session.
#[derive(Debug, PartialEq, Eq)]
pub enum LineResult {
    /// Output to print.
    Output(String),
    /// The line was absorbed; more input is needed (unbalanced braces).
    Continue,
    /// `.exit` was requested.
    Exit,
}

/// Outcome of feeding one line, with the engine error kept typed —
/// `ode-server` maps [`EvalResult::Error`] to a typed wire error while
/// [`LineResult`] flattens it into printable text.
#[derive(Debug)]
pub enum EvalResult {
    /// Output to print (possibly empty).
    Output(String),
    /// The statement ran and the engine rejected it.
    Error(OdeError),
    /// The line was absorbed; more input is needed (unbalanced braces).
    Continue,
    /// `.exit` was requested.
    Exit,
}

impl Session {
    /// Open a durable session.
    pub fn open(dir: &Path) -> Result<Session> {
        Ok(Session::with_database(Database::open(dir)?))
    }

    /// Open a volatile in-memory session.
    pub fn in_memory() -> Session {
        Session::with_database(Database::in_memory())
    }

    /// Wrap an existing database.
    pub fn with_database(db: Database) -> Session {
        Session::with_shared(Arc::new(db))
    }

    /// A session over an already-shared database (one of many — the
    /// server opens one per connection).
    pub fn with_shared(db: Arc<Database>) -> Session {
        Session {
            db,
            pending: String::new(),
            done: false,
            last_trace: TraceId::NONE,
        }
    }

    /// Trace id of the most recent statement this session executed.
    pub fn last_trace(&self) -> TraceId {
        self.last_trace
    }

    /// Access the underlying database (tests, host integration).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Clone the shared handle to the underlying database.
    pub fn shared_database(&self) -> Arc<Database> {
        Arc::clone(&self.db)
    }

    /// Has `.exit` been issued?
    pub fn finished(&self) -> bool {
        self.done
    }

    /// Is the session waiting for more lines of a multi-line declaration?
    pub fn is_continuing(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Feed one input line, flattening engine errors into printable
    /// `error: …` text (the local REPL's behaviour).
    pub fn line(&mut self, line: &str) -> LineResult {
        match self.eval_line(line) {
            EvalResult::Output(o) => LineResult::Output(o),
            EvalResult::Error(e) => LineResult::Output(format!("error: {e}")),
            EvalResult::Continue => LineResult::Continue,
            EvalResult::Exit => LineResult::Exit,
        }
    }

    /// Feed one input line, keeping engine errors typed.
    pub fn eval_line(&mut self, line: &str) -> EvalResult {
        if !self.pending.is_empty() {
            self.pending.push('\n');
            self.pending.push_str(line);
            if balanced(&self.pending) {
                let stmt = std::mem::take(&mut self.pending);
                return self.eval_statement(&stmt);
            }
            return EvalResult::Continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with("//") {
            return EvalResult::Output(String::new());
        }
        if trimmed == ".exit" || trimmed == ".quit" {
            self.done = true;
            return EvalResult::Exit;
        }
        if trimmed.starts_with("class") && !balanced(trimmed) {
            self.pending = line.to_string();
            return EvalResult::Continue;
        }
        self.eval_statement(line)
    }

    /// Execute one complete statement, keeping the engine error typed.
    pub fn eval_statement(&mut self, stmt: &str) -> EvalResult {
        match self.dispatch(stmt) {
            Ok(out) => EvalResult::Output(out),
            Err(e) => EvalResult::Error(e),
        }
    }

    /// Execute one complete statement, formatting output or error.
    pub fn statement(&mut self, stmt: &str) -> String {
        match self.dispatch(stmt) {
            Ok(out) => out,
            Err(e) => format!("error: {e}"),
        }
    }

    fn dispatch(&mut self, stmt: &str) -> Result<String> {
        let trimmed = stmt.trim();
        if let Some(meta) = trimmed.strip_prefix('.') {
            return self.meta(meta);
        }
        // Trace context: adopt the caller's trace (the server sets one
        // from the wire frame before dispatching) or mint a fresh one, so
        // every statement's spans are retrievable by id afterwards.
        let flight = Arc::clone(self.db.flight());
        let inherited = current_trace();
        let _ctx = if inherited.is_traced() {
            None
        } else {
            Some(set_trace(flight.mint_trace()))
        };
        let trace = current_trace();
        self.last_trace = trace;
        let started = std::time::Instant::now();

        let result = {
            let mut span = flight.span(SpanStage::Request, stmt_head(trimmed));
            // Static analysis first (DESIGN.md §9): error-severity
            // findings reject the statement *before* any transaction is
            // opened or snapshot taken; warnings ride along and are
            // printed above the statement's normal output.
            let r = self.preflight(trimmed).and_then(|warnings| {
                let out = self.run_statement(trimmed)?;
                if warnings.is_empty() {
                    return Ok(out);
                }
                let mut with_warnings = String::new();
                for w in &warnings {
                    let _ = writeln!(with_warnings, "{w}");
                }
                with_warnings.push_str(&out);
                Ok(with_warnings)
            });
            if r.is_err() {
                span.set_detail(format!("{} (error)", stmt_head(trimmed)));
            }
            r
        };

        // Slow-query log: over-threshold statements are captured with
        // their plan (execute-span details) and per-stage timings.
        let total_ns = started.elapsed().as_nanos() as u64;
        if total_ns >= self.db.slow_log().threshold_ns() {
            let spans = flight.for_trace(trace);
            let mut stages: Vec<(String, u64)> = Vec::new();
            let mut plan: Vec<(String, String)> = Vec::new();
            for s in &spans {
                let name = s.stage.name().to_string();
                match stages.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, ns)) => *ns += s.duration_ns(),
                    None => stages.push((name, s.duration_ns())),
                }
                if s.stage == SpanStage::Execute && !s.detail.is_empty() {
                    plan.push(("strategy".to_string(), s.detail.clone()));
                }
                // The commit span's detail carries the published epoch and
                // the validation/turn wait (DESIGN.md §13) — keep it so a
                // slow commit shows *where* the time went.
                if s.stage == SpanStage::Commit && !s.detail.is_empty() {
                    plan.push(("commit".to_string(), s.detail.clone()));
                }
            }
            self.db.slow_log().offer(SlowQuery {
                trace,
                statement: trimmed.to_string(),
                total_ns,
                plan,
                stages,
                at_ms: 0,
            });
        }
        result
    }

    /// Run the analyzer on a statement about to execute. Errors become
    /// [`OdeError::Analysis`]; warnings are returned for inline display;
    /// parse failures pass silently so the executor reports them with
    /// their original error type.
    fn preflight(&self, stmt: &str) -> Result<Vec<Diagnostic>> {
        match self.db.analyze_statement(stmt) {
            Ok(diags) if diags.iter().any(|d| d.severity == Severity::Error) => {
                Err(OdeError::Analysis(diags))
            }
            Ok(diags) => Ok(diags),
            Err(_) => Ok(Vec::new()),
        }
    }

    fn run_statement(&mut self, trimmed: &str) -> Result<String> {
        if trimmed.starts_with("class") {
            let ids = self.db.define_from_source(trimmed)?;
            let names: Vec<String> = self.db.with_schema(|s| {
                ids.iter()
                    .map(|id| s.class(*id).map(|c| c.name.clone()))
                    .collect::<ode_model::Result<_>>()
            })?;
            return Ok(format!("defined class(es): {}", names.join(", ")));
        }
        if let Some(rest) = trimmed.strip_prefix("create cluster") {
            let name = rest.trim();
            self.db.create_cluster(name)?;
            return Ok(format!("cluster `{name}` ready"));
        }
        if let Some(rest) = trimmed.strip_prefix("destroy cluster") {
            let name = rest.trim();
            self.db.destroy_cluster(name)?;
            return Ok(format!("cluster `{name}` destroyed"));
        }
        if let Some(rest) = trimmed.strip_prefix("create index") {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            let (class, field) = match parts.as_slice() {
                [class, field] => (*class, *field),
                [spec] if spec.contains('.') => {
                    let mut it = spec.splitn(2, '.');
                    (it.next().unwrap(), it.next().unwrap())
                }
                _ => {
                    return Err(OdeError::Usage(
                        "usage: create index <class> <field>".into(),
                    ))
                }
            };
            self.db.create_index(class, field)?;
            return Ok(format!("index on {class}.{field} ready"));
        }
        if let Some(rest) = trimmed.strip_prefix("activate") {
            // `activate <trigger> on <oid> [(arg, ...)]`
            let rest = rest.trim();
            let (trigger, rest) = rest.split_once(char::is_whitespace).ok_or_else(|| {
                OdeError::Usage("usage: activate <trigger> on <oid> (args)".into())
            })?;
            let rest = rest.trim();
            let rest = rest
                .strip_prefix("on")
                .ok_or_else(|| OdeError::Usage("usage: activate <trigger> on <oid> (args)".into()))?
                .trim();
            let (oid_text, args_text) = match rest.split_once('(') {
                Some((o, a)) => (o.trim(), Some(a.trim_end().trim_end_matches(')'))),
                None => (rest, None),
            };
            let oid = parse_oid(oid_text)?;
            let mut args = Vec::new();
            if let Some(a) = args_text {
                if !a.trim().is_empty() {
                    let schema_args: ode_core::Result<Vec<Value>> = self.db.with_schema(|s| {
                        a.split(',')
                            .map(|piece| {
                                let e = ode_model::parse_expr(piece.trim())?;
                                Ok(ode_model::EvalCtx::new(s).eval(&e)?)
                            })
                            .collect()
                    });
                    args = schema_args?;
                }
            }
            let mut tx = self.db.begin();
            let tid = tx.activate_trigger(oid, trigger, args)?;
            tx.commit()?;
            return Ok(format!("activated {tid} ({trigger} on {oid})"));
        }
        if let Some(rest) = trimmed.strip_prefix("deactivate") {
            let id_text = rest.trim().trim_start_matches("trigger#");
            let id: u64 = id_text
                .parse()
                .map_err(|_| OdeError::Usage(format!("`{}` is not a trigger id", rest.trim())))?;
            let mut tx = self.db.begin();
            tx.deactivate_trigger(TriggerId(id))?;
            tx.commit()?;
            return Ok(format!("deactivated trigger#{id}"));
        }
        // Statements the footprint pass proves read-only run on the
        // shared snapshot path, which skips the writer gate entirely so
        // any number of shell/server sessions can read concurrently
        // (DESIGN.md §8, §14).
        if is_read_only(&self.db, trimmed) {
            let mut rtx = self.db.begin_read();
            let result = rtx.execute(trimmed)?;
            return match result {
                ExecResult::Rows(rows) => self.format_rows(&rtx, &rows),
                ExecResult::Explain(prof) => Ok(format_explain_in(&self.db, trimmed, &prof)),
                _ => Err(OdeError::Usage(
                    "read-only statement produced a write result".into(),
                )),
            };
        }
        // DML, auto-committed.
        let mut tx = self.db.begin();
        let result = tx.execute(trimmed)?;
        let out = match result {
            ExecResult::Rows(rows) => self.format_rows(&tx, &rows)?,
            ExecResult::Created(oid) => format!("created {oid}"),
            ExecResult::Updated(n) => format!("updated {n} object(s)"),
            ExecResult::Deleted(n) => format!("deleted {n} object(s)"),
            ExecResult::Explain(prof) => format_explain(&prof),
        };
        let info = tx.commit()?;
        let mut out = out;
        for f in &info.fired {
            let _ = writeln!(out);
            let _ = write!(out, "trigger `{}` fired on {}", f.trigger, f.oid);
        }
        // Decoupled mode (a scheduler is attached): the commit returned
        // before the actions ran, so report what was handed off.
        for f in &info.enqueued {
            let _ = writeln!(out);
            let _ = write!(out, "trigger `{}` enqueued on {}", f.trigger, f.oid);
        }
        for fail in &info.failures {
            let _ = writeln!(out);
            let _ = write!(out, "trigger action failed on {}: {}", fail.oid, fail.error);
        }
        Ok(out)
    }

    fn format_rows<C: ReadContext>(&self, tx: &C, rows: &QueryRows) -> Result<String> {
        let mut out = String::new();
        for row in &rows.rows {
            for (var, oid) in rows.vars.iter().zip(row.iter()) {
                let line = self.format_object(tx, *oid)?;
                let _ = writeln!(out, "{var} = {line}");
            }
        }
        let _ = write!(out, "{} row(s)", rows.rows.len());
        Ok(out)
    }

    fn format_object<C: ReadContext>(&self, tx: &C, oid: Oid) -> Result<String> {
        let state = tx.read_obj(oid)?;
        self.db.with_schema(|schema| -> Result<String> {
            let def = schema.class(state.class)?;
            let mut s = format!("{oid} ({})", def.name);
            s.push_str(" { ");
            for (i, f) in def.layout.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{}: {}", f.name, state.fields[i]);
            }
            s.push_str(" }");
            Ok(s)
        })
    }

    fn meta(&mut self, cmd: &str) -> Result<String> {
        let mut parts = cmd.split_whitespace();
        let head = parts.next().unwrap_or("");
        match head {
            "help" => Ok(HELP.trim().to_string()),
            "classes" => {
                let mut out = String::new();
                self.db.with_schema(|s| {
                    for c in s.classes() {
                        let bases: Vec<&str> = c
                            .bases
                            .iter()
                            .filter_map(|b| s.class(*b).ok().map(|d| d.name.as_str()))
                            .collect();
                        let _ = writeln!(
                            out,
                            "{} ({} fields{}{})",
                            c.name,
                            c.layout.len(),
                            if bases.is_empty() { "" } else { ", bases: " },
                            bases.join(", ")
                        );
                    }
                });
                if out.is_empty() {
                    out.push_str("no classes defined");
                }
                Ok(out.trim_end().to_string())
            }
            "describe" => {
                let name = parts
                    .next()
                    .ok_or_else(|| OdeError::Usage("usage: .describe <class>".into()))?;
                self.db.with_schema(|s| -> Result<String> {
                    let def = s.class_by_name(name)?;
                    let mut out = format!("class {}", def.name);
                    if !def.bases.is_empty() {
                        let bases: Vec<&str> = def
                            .bases
                            .iter()
                            .filter_map(|b| s.class(*b).ok().map(|d| d.name.as_str()))
                            .collect();
                        let _ = write!(out, " : {}", bases.join(", "));
                    }
                    let _ = writeln!(out, " {{");
                    for f in &def.layout {
                        let declared = s
                            .class(f.declared_in)
                            .map(|c| c.name.clone())
                            .unwrap_or_default();
                        let _ = writeln!(
                            out,
                            "    {} {};{}",
                            f.ty.name(),
                            f.name,
                            if declared == def.name {
                                String::new()
                            } else {
                                format!("  // from {declared}")
                            }
                        );
                    }
                    for (owner, c) in s.all_constraints(def.id)? {
                        let _ = writeln!(
                            out,
                            "    constraint {}: {};  // from {}",
                            c.name, c.src, owner.name
                        );
                    }
                    for (owner, t) in s.all_triggers(def.id)? {
                        let _ = writeln!(
                            out,
                            "    {}trigger {}({}) : {};  // from {}",
                            if t.perpetual { "perpetual " } else { "" },
                            t.name,
                            t.params.join(", "),
                            t.condition_src,
                            owner.name
                        );
                    }
                    out.push('}');
                    Ok(out)
                })
            }
            "clusters" => {
                let mut out = String::new();
                let names: Vec<String> = self
                    .db
                    .with_schema(|s| s.classes().iter().map(|c| c.name.clone()).collect());
                for name in names {
                    if self.db.has_cluster(&name) {
                        let n = self.db.extent_size(&name, false)?;
                        let deep = self.db.extent_size(&name, true)?;
                        let _ = writeln!(out, "{name}: {n} object(s), {deep} in hierarchy");
                    }
                }
                if out.is_empty() {
                    out.push_str("no clusters");
                }
                Ok(out.trim_end().to_string())
            }
            "indexes" => {
                let mut out = String::new();
                for (class, field) in self.db.index_names() {
                    let _ = writeln!(out, "{class}.{field}");
                }
                if out.is_empty() {
                    out.push_str("no indexes");
                }
                Ok(out.trim_end().to_string())
            }
            "triggers" => {
                let mut out = String::new();
                let armed = self.db.activation_summary();
                if armed.is_empty() {
                    let _ = writeln!(out, "no armed activations");
                } else {
                    let _ = writeln!(out, "armed activations:");
                    for (trigger, count) in armed {
                        let _ = writeln!(out, "  {trigger:<24} {count}");
                    }
                }
                let pending = self.db.pending_events().len();
                let _ = writeln!(
                    out,
                    "firing: {} ({pending} pending event(s))",
                    if self.db.firing_decoupled() {
                        "decoupled (scheduler attached)"
                    } else {
                        "inline"
                    }
                );
                if let Some(rows) = self.db.sched_status() {
                    for (k, v) in rows {
                        let _ = writeln!(out, "  {k:<24} {v}");
                    }
                }
                Ok(out.trim_end().to_string())
            }
            "export" => {
                let path = parts
                    .next()
                    .ok_or_else(|| OdeError::Usage("usage: .export <file>".into()))?;
                let dump = self.db.export()?;
                std::fs::write(path, &dump)
                    .map_err(|e| OdeError::Usage(format!("cannot write {path}: {e}")))?;
                Ok(format!("wrote {} bytes to {path}", dump.len()))
            }
            "import" => {
                let path = parts
                    .next()
                    .ok_or_else(|| OdeError::Usage("usage: .import <file>".into()))?;
                let dump = std::fs::read(path)
                    .map_err(|e| OdeError::Usage(format!("cannot read {path}: {e}")))?;
                let stats = self.db.import(&dump)?;
                Ok(format!(
                    "imported {} class(es), {} object(s), {} version(s), {} activation(s)",
                    stats.classes, stats.objects, stats.versions, stats.activations
                ))
            }
            "show" => {
                let spec = parts
                    .next()
                    .ok_or_else(|| OdeError::Usage("usage: .show <cluster:page.slot>".into()))?;
                let oid = parse_oid(spec)?;
                let rtx = self.db.begin_read();
                let line = self.format_object(&rtx, oid)?;
                Ok(line)
            }
            "stats" => match parts.next() {
                Some("reset") => {
                    self.db.reset_telemetry();
                    Ok("telemetry counters and query profiles reset".to_string())
                }
                Some("profiles") => {
                    let profiles = self.db.query_profiles();
                    if profiles.is_empty() {
                        return Ok("no query profiles".to_string());
                    }
                    let mut out = String::new();
                    for (key, bucket) in profiles {
                        let p = &bucket.profile;
                        let _ = writeln!(
                            out,
                            "{key}: passes={} scanned={} pred_evals={} probes={} rows={}",
                            bucket.passes,
                            p.objects_scanned,
                            p.predicate_evals,
                            p.index_probes,
                            p.rows
                        );
                    }
                    Ok(out.trim_end().to_string())
                }
                Some(other) => Err(OdeError::Usage(format!(
                    "usage: .stats [reset|profiles] (got `{other}`)"
                ))),
                None => {
                    let snap = self.db.telemetry();
                    let mut out = String::new();
                    for (k, v) in snap.rows() {
                        let _ = writeln!(out, "{k:<32} {v}");
                    }
                    // Derived: how many commits each cohort fsync covered
                    // (1.00 = no group-commit sharing).
                    if snap.storage.commit_groups > 0 {
                        let mean = snap.storage.commit_group_members as f64
                            / snap.storage.commit_groups as f64;
                        let _ = writeln!(out, "{:<32} {mean:.2}", "storage.mean_cohort");
                    }
                    Ok(out.trim_end().to_string())
                }
            },
            "trace" => match parts.next() {
                None => {
                    if !self.last_trace.is_traced() {
                        return Ok("no statement traced yet".to_string());
                    }
                    let spans = self.db.flight().for_trace(self.last_trace);
                    Ok(render_spans(&spans))
                }
                Some("on") => {
                    self.db.flight().set_enabled(true);
                    Ok("flight recorder enabled".to_string())
                }
                Some("off") => {
                    self.db.flight().set_enabled(false);
                    Ok("flight recorder disabled".to_string())
                }
                Some("recent") => {
                    let ids = self.db.flight().recent_traces(16);
                    if ids.is_empty() {
                        return Ok("no traces recorded".to_string());
                    }
                    let mut out = String::new();
                    for id in ids {
                        let _ = writeln!(out, "{id}");
                    }
                    Ok(out.trim_end().to_string())
                }
                Some(spec) => {
                    let id = parse_trace_id(spec)?;
                    let spans = self.db.flight().for_trace(id);
                    if spans.is_empty() {
                        return Ok(format!(
                            "no spans for trace {id} (ring holds {} of {} recorded)",
                            self.db.flight().capacity(),
                            self.db.flight().recorded()
                        ));
                    }
                    Ok(render_spans(&spans))
                }
            },
            "slow" => match parts.next() {
                None => Ok(self.db.slow_log().render()),
                Some("clear") => {
                    self.db.slow_log().clear();
                    Ok("slow-query log cleared".to_string())
                }
                Some(ms) => {
                    let ms: u64 = ms.parse().map_err(|_| {
                        OdeError::Usage(format!("usage: .slow [<threshold-ms>|clear] (got `{ms}`)"))
                    })?;
                    self.db.slow_log().set_threshold_ns(ms * 1_000_000);
                    Ok(format!("slow-query threshold set to {ms} ms"))
                }
            },
            "metrics" => {
                let engine = self.db.telemetry();
                let workload = self.db.workload_stats();
                Ok(prom::render(
                    &engine,
                    None,
                    &workload,
                    self.db.flight().recorded(),
                ))
            }
            "check" => {
                let mut json = false;
                let mut files = Vec::new();
                for p in parts {
                    if p == "--json" {
                        json = true;
                    } else {
                        files.push(p.to_string());
                    }
                }
                if files.is_empty() {
                    return Err(OdeError::Usage("usage: .check [--json] <file> ...".into()));
                }
                let report = check_files(&files).map_err(OdeError::Usage)?;
                let out = if json {
                    report.render_json()
                } else {
                    report.render_text()
                };
                if report.has_errors() {
                    // Scripted sessions need a non-zero exit: surface the
                    // findings as a typed analysis error, each annotated
                    // with its file and line.
                    let diags = report
                        .findings
                        .iter()
                        .map(|f| {
                            let mut d = f.diag.clone();
                            d.message = format!("{}:{}: {}", f.file, f.line, d.message);
                            d
                        })
                        .collect();
                    return Err(OdeError::Analysis(diags));
                }
                Ok(out)
            }
            "versions" => {
                let spec = parts.next().ok_or_else(|| {
                    OdeError::Usage("usage: .versions <cluster:page.slot>".into())
                })?;
                let oid = parse_oid(spec)?;
                let tx = self.db.begin_read();
                let versions = tx.versions(oid)?;
                let current = tx.current_version(oid)?;
                let mut out = String::new();
                for v in versions {
                    let parent = tx.parent_version(VersionRef { oid, version: v })?;
                    let _ = writeln!(
                        out,
                        "v{v}{}{}",
                        match parent {
                            Some(p) => format!(" (parent v{p})"),
                            None => " (root)".to_string(),
                        },
                        if v == current { "  <- current" } else { "" }
                    );
                }
                Ok(out.trim_end().to_string())
            }
            other => Err(OdeError::Usage(format!(
                "unknown command `.{other}` (try .help)"
            ))),
        }
    }
}

// ------------------------------------------------------------ batch lint

/// One `.check` finding: an analyzer diagnostic tied back to the file
/// and line of the statement that produced it.
#[derive(Debug, Clone)]
pub struct CheckFinding {
    /// The file (or label) the statement came from.
    pub file: String,
    /// 1-based line where the statement starts.
    pub line: usize,
    /// The analyzer's finding.
    pub diag: Diagnostic,
}

/// The static footprint of one checked statement (DML and queries;
/// DDL has no statement footprint).
#[derive(Debug, Clone)]
pub struct CheckFootprint {
    /// The file (or label) the statement came from.
    pub file: String,
    /// 1-based line where the statement starts.
    pub line: usize,
    /// Rendered `reads …; writes …` form (see
    /// [`ode_core::Footprint`]'s `Display`).
    pub footprint: String,
    /// Proven to touch no write machinery.
    pub read_only: bool,
}

/// Accumulated results of batch-linting one or more O++ source files.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Every finding, in file/statement order.
    pub findings: Vec<CheckFinding>,
    /// Per-statement footprints, in file/statement order.
    pub footprints: Vec<CheckFootprint>,
    /// A301 batch-interference findings: statement pairs in one file
    /// whose footprints cannot be proven disjoint. Advisory, kept apart
    /// from `findings` — a script's statements run sequentially, where
    /// interference is normal; the pairs matter when the statements are
    /// dispatched as concurrent transactions.
    pub interference: Vec<CheckFinding>,
    /// Files checked.
    pub files: usize,
    /// Statements checked (across all files).
    pub statements: usize,
}

impl CheckReport {
    /// Error-severity findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.diag.severity == Severity::Error)
            .count()
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.findings.len() - self.errors()
    }

    /// Should a batch run exit non-zero?
    pub fn has_errors(&self) -> bool {
        self.errors() > 0
    }

    /// `file:line: severity[code]: message` lines plus a summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}:{}: {}[{}]: {}",
                f.file, f.line, f.diag.severity, f.diag.code, f.diag.message
            );
        }
        let _ = write!(
            out,
            "{} file(s), {} statement(s): {} error(s), {} warning(s)",
            self.files,
            self.statements,
            self.errors(),
            self.warnings()
        );
        out
    }

    /// Machine-readable report: one JSON object with the schema
    ///
    /// ```json
    /// {
    ///   "files": <int>, "statements": <int>,
    ///   "errors": <int>, "warnings": <int>,
    ///   "findings": [
    ///     {"file": <string>, "line": <int>, "code": "A301",
    ///      "severity": "error" | "warning", "message": <string>}, …
    ///   ],
    ///   "footprints": [
    ///     {"file": <string>, "line": <int>,
    ///      "footprint": "reads stockitem[quantity in [5, 5]]; …",
    ///      "read_only": <bool>}, …
    ///   ],
    ///   "interference": [ <same object shape as findings> ]
    /// }
    /// ```
    ///
    /// Keys appear in exactly this order; `findings` follow
    /// file/statement order, `footprints` cover each analyzable DML or
    /// query statement (DDL contributes none), and `interference` holds
    /// the advisory A301 pairs (excluded from the `warnings` count — see
    /// [`CheckReport::interference`]). The schema only grows — consumers
    /// should ignore unknown keys.
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"files\":{},\"statements\":{},\"errors\":{},\"warnings\":{},\"findings\":[",
            self.files,
            self.statements,
            self.errors(),
            self.warnings()
        );
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"file\":\"{}\",\"line\":{},\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"}}",
                json_escape(&f.file),
                f.line,
                f.diag.code,
                f.diag.severity,
                json_escape(&f.diag.message)
            );
        }
        out.push_str("],\"footprints\":[");
        for (i, fp) in self.footprints.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"file\":\"{}\",\"line\":{},\"footprint\":\"{}\",\"read_only\":{}}}",
                json_escape(&fp.file),
                fp.line,
                json_escape(&fp.footprint),
                fp.read_only
            );
        }
        out.push_str("],\"interference\":[");
        for (i, f) in self.interference.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"file\":\"{}\",\"line\":{},\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"}}",
                json_escape(&f.file),
                f.line,
                f.diag.code,
                f.diag.severity,
                json_escape(&f.diag.message)
            );
        }
        out.push_str("]}");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Read and batch-lint each file into one [`CheckReport`]. `Err` only
/// for I/O failures (unreadable file); findings — including statements
/// that do not parse — go into the report.
pub fn check_files(paths: &[String]) -> std::result::Result<CheckReport, String> {
    let mut report = CheckReport::default();
    for path in paths {
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        check_source(path, &source, &mut report);
    }
    Ok(report)
}

/// Batch-lint one O++ source: every statement is analyzed against a
/// scratch in-memory database, with DDL (`class`, `create cluster`,
/// `create index`, `destroy cluster`) *applied* as it passes so later
/// statements resolve against the schema and catalog the file builds up.
/// DML and queries are analyzed but never executed. Statement assembly
/// mirrors the REPL: `//` comments and blank lines skipped, `.meta`
/// lines skipped (they are interactive-only), class declarations span
/// lines until their braces balance.
pub fn check_source(file: &str, source: &str, report: &mut CheckReport) {
    let db = Database::in_memory();
    report.files += 1;
    let mut pending = String::new();
    let mut start_line = 0usize;
    let mut batch: Vec<(usize, ode_core::Footprint)> = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        if !pending.is_empty() {
            pending.push('\n');
            pending.push_str(raw);
            if balanced(&pending) {
                let stmt = std::mem::take(&mut pending);
                check_statement(&db, file, start_line, &stmt, report, &mut batch);
            }
            continue;
        }
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with("//") || trimmed.starts_with('.') {
            continue;
        }
        if trimmed.starts_with("class") && !balanced(trimmed) {
            pending = raw.to_string();
            start_line = lineno;
            continue;
        }
        check_statement(&db, file, lineno, raw, report, &mut batch);
    }
    // A301 — the file's statements treated as a batch: every pair whose
    // footprints the interference pass cannot prove disjoint. Pairwise
    // so each finding anchors on the earlier statement's line.
    for i in 0..batch.len() {
        for j in i + 1..batch.len() {
            for diag in batch_interference(&[batch[i].clone(), batch[j].clone()]) {
                report.interference.push(CheckFinding {
                    file: file.to_string(),
                    line: batch[i].0,
                    diag,
                });
            }
        }
    }
    if !pending.is_empty() {
        report.statements += 1;
        report.findings.push(CheckFinding {
            file: file.to_string(),
            line: start_line,
            diag: Diagnostic::parse_failure(
                "unterminated class declaration (braces unbalanced at end of file)".into(),
            ),
        });
    }
}

fn check_statement(
    db: &Database,
    file: &str,
    line: usize,
    stmt: &str,
    report: &mut CheckReport,
    batch: &mut Vec<(usize, ode_core::Footprint)>,
) {
    report.statements += 1;
    let trimmed = stmt.trim();
    let diags = match db.analyze_statement(trimmed) {
        Ok(d) => d,
        Err(e) => vec![Diagnostic::parse_failure(e.to_string())],
    };
    let had_errors = diags.iter().any(|d| d.severity == Severity::Error);
    for diag in diags {
        report.findings.push(CheckFinding {
            file: file.to_string(),
            line,
            diag,
        });
    }
    if had_errors {
        return;
    }
    if let Ok(Some(fp)) = db.statement_footprint(trimmed) {
        report.footprints.push(CheckFootprint {
            file: file.to_string(),
            line,
            footprint: fp.to_string(),
            read_only: fp.read_only(),
        });
        batch.push((line, fp));
    }
    // Apply schema-shaping statements so the rest of the file resolves.
    let applied: Result<()> = if trimmed.starts_with("class") {
        db.define_from_source(trimmed).map(|_| ())
    } else if let Some(rest) = trimmed.strip_prefix("create cluster") {
        db.create_cluster(rest.trim()).map(|_| ())
    } else if let Some(rest) = trimmed.strip_prefix("destroy cluster") {
        db.destroy_cluster(rest.trim())
    } else if let Some(rest) = trimmed.strip_prefix("create index") {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        match parts.as_slice() {
            [class, field] => db.create_index(class, field).map(|_| ()),
            _ => Ok(()), // malformed: already reported by analysis, or usage-level
        }
    } else {
        Ok(())
    };
    if let Err(e) = applied {
        report.findings.push(CheckFinding {
            file: file.to_string(),
            line,
            diag: Diagnostic::parse_failure(e.to_string()),
        });
    }
}

/// Would this statement leave the database unchanged? Decided by the
/// analyzer's footprint when it can compute one — a footprint with no
/// write accesses is a *proof* the statement cannot reach the write-txn
/// machinery (DESIGN.md §14) — with the keyword head as the fallback for
/// statements the pass cannot shape (so a parse error still surfaces
/// from the path the user asked for). Proven statements route through
/// [`Database::begin_read`] and never queue behind the writer gate.
fn is_read_only(db: &Database, stmt: &str) -> bool {
    if let Ok(Some(fp)) = db.statement_footprint(stmt) {
        return fp.read_only();
    }
    let head = stmt
        .split_whitespace()
        .next()
        .unwrap_or("")
        .to_ascii_lowercase();
    matches!(head.as_str(), "forall" | "for" | "explain")
}

/// Render an `explain` profile as aligned `key value` lines.
fn format_explain(prof: &QueryProfile) -> String {
    let mut out = String::new();
    for (k, v) in prof.rows() {
        let _ = writeln!(out, "{k:<24} {v}");
    }
    out.trim_end().to_string()
}

/// `explain` output with the statement's static footprint appended: what
/// the analyzer proved about the clusters, index, and key ranges the
/// statement can touch, next to what the executor actually did.
fn format_explain_in(db: &Database, stmt: &str, prof: &QueryProfile) -> String {
    let mut out = format_explain(prof);
    if let Ok(Some(fp)) = db.statement_footprint(stmt) {
        let _ = write!(out, "\n{:<24} {}", "footprint", fp);
    }
    out
}

/// First ≤48 chars of a statement, for flight-recorder span details.
fn stmt_head(stmt: &str) -> String {
    let mut head: String = stmt.chars().take(48).collect();
    if head.len() < stmt.len() {
        head.push('…');
    }
    head
}

/// Parse a trace id as the shell prints it (`0x`-prefixed hex) or as
/// plain hex/decimal digits.
pub fn parse_trace_id(spec: &str) -> Result<TraceId> {
    let bad = || {
        OdeError::Usage(format!(
            "`{spec}` is not a trace id (hex, e.g. 0x68958f2a00001)"
        ))
    };
    let raw = spec.trim();
    let id = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map_err(|_| bad())?
    } else {
        // Bare ids are hex too (that is how they print); fall back to
        // decimal for hand-typed small numbers.
        u64::from_str_radix(raw, 16)
            .or_else(|_| raw.parse())
            .map_err(|_| bad())?
    };
    Ok(TraceId(id))
}

/// Parse `cluster:page.slot` — the textual oid form the shell prints.
pub fn parse_oid(spec: &str) -> Result<Oid> {
    let bad = || OdeError::Usage(format!("`{spec}` is not an oid (cluster:page.slot)"));
    let (cluster, rest) = spec.split_once(':').ok_or_else(bad)?;
    let (page, slot) = rest.split_once('.').ok_or_else(bad)?;
    Ok(Oid {
        cluster: cluster.parse().map_err(|_| bad())?,
        rid: RecordId {
            page: page.parse().map_err(|_| bad())?,
            slot: slot.parse().map_err(|_| bad())?,
        },
    })
}

/// Are braces balanced (outside string literals)? Drives multi-line DDL.
fn balanced(src: &str) -> bool {
    let mut depth = 0i64;
    let mut in_str: Option<char> = None;
    for c in src.chars() {
        match in_str {
            Some(q) => {
                if c == q {
                    in_str = None;
                }
            }
            None => match c {
                '\'' | '"' => in_str = Some(c),
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            },
        }
    }
    depth <= 0 && in_str.is_none()
}

const HELP: &str = r#"
Ode shell — every statement is its own transaction.

schema:
  class <name> [: public <base>, ...] { <members> }   define a class
  create cluster <class>                              create the type extent
  create index <class> <field>                        secondary index
  destroy cluster <class>                             drop extent + objects

queries (forall ... suchthat ... by ...):
  forall s in stockitem suchthat (quantity < 10) by (name)
  forall e in employee, d in dept suchthat (e.dno == d.dno)
  forall p in only person                             exact class, no subclasses
  explain forall ...                                  plan + execution profile

data manipulation:
  pnew <class> (field = expr, ...)
  update <v> in <class> [suchthat (...)] set f = expr [, ...]
  delete <v> in <class> [suchthat (...)]

triggers:
  activate <trigger> on <oid> (arg, ...)      arm a trigger (§6)
  deactivate trigger#<id>                     disarm before it fires

meta:
  .classes   .describe <class>   .clusters   .indexes
  .show <oid>   .versions <oid>
  .triggers                            armed activations, firing mode
                                       (inline/decoupled), scheduler status
  .check [--json] <file> ...           batch-lint O++ files (no execution)
  .stats [reset]                       engine telemetry counters
  .stats profiles                      accumulated per-query profiles
  .trace [<id>|recent|on|off]          flight-recorder spans (last statement,
                                       a specific trace, or toggle recording)
  .slow [<threshold-ms>|clear]         slow-query log / set threshold
  .metrics                             Prometheus text exposition of all counters
  .export <file>   .import <file>      whole-database dump / restore
  .help   .exit

remote sessions (ode-shell --connect) additionally understand:
  .server                              serving-layer stats
  .subscribe <class> <predicate>       live-stream commits matching the
                                       predicate (printed as `push ...`)
  .unsubscribe <id>   .watch [secs]    stop a stream / wait for pushes

Every statement is statically analyzed before it runs: errors (unknown
members, type mismatches, contradictory constraints) reject the
statement before a transaction is opened; warnings (unsatisfiable
suchthat, unindexed equality, trigger cycles) print inline.
"#;

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(s: &mut Session, line: &str) -> String {
        match s.line(line) {
            LineResult::Output(o) => o,
            LineResult::Continue => String::new(),
            LineResult::Exit => "<exit>".into(),
        }
    }

    #[test]
    fn full_session() {
        let mut s = Session::in_memory();
        // Multi-line DDL.
        assert_eq!(s.line("class stockitem {"), LineResult::Continue);
        assert!(s.is_continuing());
        assert_eq!(
            s.line("    string name; int quantity = 0;"),
            LineResult::Continue
        );
        let out = feed(&mut s, "}");
        assert!(out.contains("defined class(es): stockitem"), "{out}");
        assert!(!s.is_continuing());

        let out = feed(&mut s, "create cluster stockitem");
        assert!(out.contains("ready"), "{out}");

        let out = feed(&mut s, r#"pnew stockitem (name = "dram", quantity = 9)"#);
        assert!(out.starts_with("created "), "{out}");

        let out = feed(&mut s, "forall s in stockitem suchthat (quantity > 5)");
        assert!(out.contains("dram"), "{out}");
        assert!(out.contains("1 row(s)"), "{out}");

        let out = feed(&mut s, "update s in stockitem set quantity = 20");
        assert!(out.contains("updated 1"), "{out}");

        let out = feed(&mut s, ".clusters");
        assert!(out.contains("stockitem: 1 object(s)"), "{out}");

        let out = feed(&mut s, "delete s in stockitem");
        assert!(out.contains("deleted 1"), "{out}");

        assert_eq!(s.line(".exit"), LineResult::Exit);
        assert!(s.finished());
    }

    #[test]
    fn single_line_ddl_and_describe() {
        let mut s = Session::in_memory();
        feed(&mut s, "class a { int x = 0; constraint: x >= 0; }");
        feed(&mut s, "class b : public a { string y; }");
        let out = feed(&mut s, ".describe b");
        assert!(out.contains("class b : a"), "{out}");
        assert!(out.contains("int x;  // from a"), "{out}");
        assert!(out.contains("constraint"), "{out}");
        let out = feed(&mut s, ".classes");
        assert!(out.contains("a (1 fields)"), "{out}");
        assert!(out.contains("b (2 fields, bases: a)"), "{out}");
    }

    #[test]
    fn trigger_firings_are_reported() {
        let mut s = Session::in_memory();
        feed(
            &mut s,
            "class item { int qty = 100; int on_order = 0; trigger low(n) : qty < $n { on_order = $n; } }",
        );
        feed(&mut s, "create cluster item");
        let out = feed(&mut s, "pnew item (qty = 50)");
        let oid = out.trim_start_matches("created ").to_string();
        // Activate through the API (the shell has no activation statement;
        // hosts do this in code).
        let oid_parsed = parse_oid(&oid).unwrap();
        s.database()
            .transaction(|tx| {
                tx.activate_trigger(oid_parsed, "low", vec![Value::Int(40)])?;
                Ok(())
            })
            .unwrap();
        let out = feed(&mut s, "update i in item set qty = 10");
        assert!(out.contains("trigger `low` fired"), "{out}");
        let out = feed(&mut s, &format!(".show {oid}"));
        assert!(out.contains("on_order: 40"), "{out}");
    }

    #[test]
    fn versions_meta_command() {
        let mut s = Session::in_memory();
        feed(&mut s, "class doc { int rev = 0; }");
        feed(&mut s, "create cluster doc");
        let out = feed(&mut s, "pnew doc");
        let oid = parse_oid(out.trim_start_matches("created ")).unwrap();
        s.database()
            .transaction(|tx| {
                tx.newversion(oid)?;
                tx.set(oid, "rev", 1i64)?;
                Ok(())
            })
            .unwrap();
        let out = feed(
            &mut s,
            &format!(".versions {}", out.trim_start_matches("created ")),
        );
        assert!(out.contains("v0 (root)"), "{out}");
        assert!(out.contains("v1 (parent v0)  <- current"), "{out}");
    }

    #[test]
    fn errors_do_not_kill_the_session() {
        let mut s = Session::in_memory();
        let out = feed(&mut s, "forall x in nowhere");
        assert!(out.starts_with("error:"), "{out}");
        let out = feed(&mut s, ".bogus");
        assert!(out.contains("unknown command"), "{out}");
        let out = feed(&mut s, "create index a b c");
        assert!(out.starts_with("error:"), "{out}");
        // Still usable.
        feed(&mut s, "class ok { int v; }");
        let out = feed(&mut s, ".classes");
        assert!(out.contains("ok"), "{out}");
    }

    #[test]
    fn stats_and_explain_commands() {
        let mut s = Session::in_memory();
        feed(&mut s, "class part { string name; int weight = 0; }");
        feed(&mut s, "create cluster part");
        feed(&mut s, "create index part weight");
        feed(&mut s, r#"pnew part (name = "bolt", weight = 3)"#);
        feed(&mut s, r#"pnew part (name = "plate", weight = 11)"#);
        feed(&mut s, "forall p in part suchthat (weight == 3)");

        // `.stats` shows nonzero counters after the workload above.
        let out = feed(&mut s, ".stats");
        assert!(out.contains("txn.committed"), "{out}");
        assert!(out.contains("query.foralls"), "{out}");
        let counter = |name: &str| -> u64 {
            out.lines()
                .find(|l| l.starts_with(name))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
                .unwrap()
        };
        // The two `pnew`s committed write transactions; the `forall` ran
        // on the snapshot read path and so shows up in read_txns only.
        assert!(counter("txn.committed") >= 2, "{out}");
        assert!(counter("txn.read_txns") >= 1, "{out}");
        assert_eq!(counter("txn.write_txns"), counter("txn.committed"), "{out}");
        // The multi-writer counters are reported (zero on this serial
        // workload, but the operator must be able to see them).
        assert_eq!(counter("txn.conflicts"), 0, "{out}");
        assert_eq!(counter("commit.retries"), 0, "{out}");
        assert!(out.contains("storage.commit_groups"), "{out}");

        // `explain` returns a plan + profile instead of rows.
        let out = feed(&mut s, "explain forall p in part suchthat (weight == 3)");
        assert!(out.contains("strategy"), "{out}");
        assert!(out.contains("index probe on `weight`"), "{out}");
        assert!(out.contains("rows"), "{out}");

        let out = feed(
            &mut s,
            "explain forall p in part suchthat (name == \"bolt\")",
        );
        assert!(out.contains("deep extent scan"), "{out}");

        // Reset zeroes the counters.
        let out = feed(&mut s, ".stats reset");
        assert!(out.contains("reset"), "{out}");
        let out = feed(&mut s, ".stats");
        let committed: u64 = out
            .lines()
            .find(|l| l.starts_with("txn.committed"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert_eq!(committed, 0, "{out}");

        // Bad sub-command is a usage error, not a crash.
        let out = feed(&mut s, ".stats bogus");
        assert!(out.starts_with("error:"), "{out}");

        // Help mentions the new surfaces.
        let out = feed(&mut s, ".help");
        assert!(out.contains(".stats [reset]"), "{out}");
        assert!(out.contains("explain forall"), "{out}");
    }

    #[test]
    fn stats_reset_clears_query_profiles() {
        let mut s = Session::in_memory();
        feed(&mut s, "class part { string name; int weight = 0; }");
        feed(&mut s, "create cluster part");
        feed(&mut s, r#"pnew part (name = "bolt", weight = 3)"#);
        assert_eq!(feed(&mut s, ".stats profiles"), "no query profiles");
        feed(&mut s, "forall p in part suchthat (weight == 3)");
        feed(&mut s, "forall p in part suchthat (weight == 3)");
        let out = feed(&mut s, ".stats profiles");
        assert!(out.contains("part | deep extent scan"), "{out}");
        assert!(out.contains("passes=2"), "{out}");
        // Reset clears counters AND the accumulated profiles, so a
        // long-lived server session cannot grow telemetry unboundedly.
        let out = feed(&mut s, ".stats reset");
        assert!(out.contains("query profiles reset"), "{out}");
        assert_eq!(feed(&mut s, ".stats profiles"), "no query profiles");
        assert!(s.database().query_profiles().is_empty());
    }

    #[test]
    fn trace_slow_and_metrics_commands() {
        let mut s = Session::in_memory();
        feed(&mut s, "class item { int qty = 0; }");
        feed(&mut s, "create cluster item");
        feed(&mut s, "pnew item (qty = 1)");
        feed(&mut s, "forall i in item");
        // Bare `.trace` shows the last statement's span tree; the
        // read-only forall ran inside a snapshot txn with an execute
        // child.
        let out = feed(&mut s, ".trace");
        assert!(out.contains("trace 0x"), "{out}");
        assert!(out.contains("txn"), "{out}");
        assert!(out.contains("execute"), "{out}");
        // `.trace <id>` retrieves the same spans by id.
        let id = format!("{}", s.last_trace());
        let out2 = feed(&mut s, &format!(".trace {id}"));
        assert_eq!(out, out2);
        // Unknown trace ids are reported, not fatal.
        let out = feed(&mut s, ".trace 0xdeadbeef");
        assert!(out.contains("no spans"), "{out}");
        let out = feed(&mut s, ".trace bogus!");
        assert!(out.starts_with("error:"), "{out}");

        // Slow log: threshold 0 captures everything.
        feed(&mut s, ".slow 0");
        feed(&mut s, "forall i in item suchthat (qty == 1)");
        let out = feed(&mut s, ".slow");
        assert!(out.contains("slow-query log"), "{out}");
        assert!(out.contains("forall i in item"), "{out}");
        assert!(out.contains("stage."), "{out}");
        feed(&mut s, ".slow clear");
        let out = feed(&mut s, ".slow");
        assert!(out.contains("0 entr"), "{out}");
        let out = feed(&mut s, ".slow 250");
        assert!(out.contains("250 ms"), "{out}");
        assert_eq!(s.database().slow_log().threshold_ns(), 250_000_000);

        // `.metrics` renders valid Prometheus exposition text.
        let out = feed(&mut s, ".metrics");
        assert!(out.contains("ode_txn_committed_total"), "{out}");
        assert!(out.contains("ode_cluster_reads_total"), "{out}");
        prom::validate(&out).unwrap();

        // The recorder can be toggled off (and back on).
        feed(&mut s, ".trace off");
        let before = s.database().flight().recorded();
        feed(&mut s, "forall i in item");
        assert_eq!(s.database().flight().recorded(), before);
        feed(&mut s, ".trace on");
        feed(&mut s, "forall i in item");
        assert!(s.database().flight().recorded() > before);
    }

    #[test]
    fn typed_eval_distinguishes_engine_errors() {
        let mut s = Session::in_memory();
        match s.eval_line("forall x in nowhere") {
            EvalResult::Error(e) => assert!(e.to_string().contains("unknown class"), "{e}"),
            other => panic!("expected typed engine error, got {other:?}"),
        }
        match s.eval_line("class partial {") {
            EvalResult::Continue => {}
            other => panic!("expected continuation, got {other:?}"),
        }
        match s.eval_line("}") {
            EvalResult::Output(o) => assert!(o.contains("defined"), "{o}"),
            other => panic!("expected output, got {other:?}"),
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let mut s = Session::in_memory();
        assert_eq!(feed(&mut s, ""), "");
        assert_eq!(feed(&mut s, "   "), "");
        assert_eq!(feed(&mut s, "// a comment"), "");
    }

    #[test]
    fn trigger_statements_in_shell() {
        let mut s = Session::in_memory();
        feed(
            &mut s,
            "class item { int qty = 100; int on_order = 0; trigger low(n) : qty < $n { on_order = $n; } }",
        );
        feed(&mut s, "create cluster item");
        let out = feed(&mut s, "pnew item");
        let oid = out.trim_start_matches("created ").to_string();
        let out = feed(&mut s, &format!("activate low on {oid} (30)"));
        assert!(out.contains("activated trigger#"), "{out}");
        // Condition false: nothing fires yet.
        let out = feed(&mut s, "update i in item set qty = 50");
        assert!(!out.contains("fired"), "{out}");
        // Condition true: fires, action applied.
        let out = feed(&mut s, "update i in item set qty = 10");
        assert!(out.contains("trigger `low` fired"), "{out}");
        let out = feed(&mut s, &format!(".show {oid}"));
        assert!(out.contains("on_order: 30"), "{out}");
        // Re-arm then deactivate before it can fire.
        let out = feed(&mut s, &format!("activate low on {oid} (99)"));
        let tid = out.split_whitespace().nth(1).unwrap().to_string();
        let out = feed(&mut s, &format!("deactivate {tid}"));
        assert!(out.contains("deactivated"), "{out}");
        let out = feed(&mut s, "update i in item set qty = 1");
        assert!(!out.contains("fired"), "{out}");
    }

    #[test]
    fn export_import_through_the_shell() {
        let path = std::env::temp_dir().join(format!("ode-shell-dump-{}.odd", std::process::id()));
        let mut s1 = Session::in_memory();
        feed(&mut s1, "class item { string name; int qty = 0; }");
        feed(&mut s1, "create cluster item");
        feed(&mut s1, r#"pnew item (name = "dram", qty = 7)"#);
        let out = feed(&mut s1, &format!(".export {}", path.display()));
        assert!(out.contains("wrote"), "{out}");

        let mut s2 = Session::in_memory();
        let out = feed(&mut s2, &format!(".import {}", path.display()));
        assert!(out.contains("imported 1 class(es), 1 object(s)"), "{out}");
        let out = feed(&mut s2, "forall i in item suchthat (qty == 7)");
        assert!(out.contains("dram"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn indexes_meta_command() {
        let mut s = Session::in_memory();
        feed(&mut s, "class item { int qty = 0; }");
        feed(&mut s, "create cluster item");
        assert_eq!(feed(&mut s, ".indexes"), "no indexes");
        feed(&mut s, "create index item qty");
        assert_eq!(feed(&mut s, ".indexes"), "item.qty");
    }

    #[test]
    fn triggers_meta_command() {
        let mut s = Session::in_memory();
        feed(
            &mut s,
            "class item { int qty = 100; int on_order = 0; \
             trigger low(n) : qty < $n { on_order = $n; } }",
        );
        feed(&mut s, "create cluster item");
        let out = feed(&mut s, ".triggers");
        assert!(out.contains("no armed activations"), "{out}");
        assert!(out.contains("firing: inline"), "{out}");
        let out = feed(&mut s, "pnew item");
        let oid = out.trim_start_matches("created ").to_string();
        feed(&mut s, &format!("activate low on {oid} (30)"));
        let out = feed(&mut s, ".triggers");
        assert!(out.contains("armed activations:"), "{out}");
        assert!(out.contains("low"), "{out}");
    }

    #[test]
    fn oid_parsing() {
        let oid = parse_oid("3:7.2").unwrap();
        assert_eq!(oid.cluster, 3);
        assert_eq!(oid.rid.page, 7);
        assert_eq!(oid.rid.slot, 2);
        assert!(parse_oid("junk").is_err());
        assert!(parse_oid("1:2").is_err());
        assert!(parse_oid("a:b.c").is_err());
    }

    #[test]
    fn analysis_rejects_before_any_transaction() {
        let mut s = Session::in_memory();
        feed(&mut s, "class item { string name; int qty = 0; }");
        feed(&mut s, "create cluster item");
        let before = s.database().telemetry();
        // A read-only query with an unknown member: rejected with a coded
        // diagnostic, and no snapshot was ever taken.
        match s.eval_statement("forall i in item suchthat (missing > 3)") {
            EvalResult::Error(OdeError::Analysis(diags)) => {
                assert_eq!(diags.len(), 1, "{diags:?}");
                assert_eq!(diags[0].code, "A002");
                assert_eq!(diags[0].severity, Severity::Error);
            }
            other => panic!("expected analysis error, got {other:?}"),
        }
        // DML with a type mismatch: rejected before a write transaction.
        match s.eval_statement("pnew item (qty = \"lots\")") {
            EvalResult::Error(OdeError::Analysis(diags)) => {
                assert_eq!(diags[0].code, "A007");
            }
            other => panic!("expected analysis error, got {other:?}"),
        }
        let after = s.database().telemetry();
        assert_eq!(before.txn.read_txns, after.txn.read_txns);
        assert_eq!(before.txn.write_txns, after.txn.write_txns);
        assert_eq!(before.txn.begun, after.txn.begun);
        // The analyzer itself was counted.
        assert!(after.analyze.errors >= before.analyze.errors + 2);
        assert!(after.analyze.passes > before.analyze.passes);
    }

    #[test]
    fn warnings_print_inline_and_do_not_block() {
        let mut s = Session::in_memory();
        feed(&mut s, "class item { string name; int qty = 0; }");
        feed(&mut s, "create cluster item");
        let out = feed(&mut s, "forall i in item suchthat (name == \"x\")");
        assert!(out.contains("warning[A102]"), "{out}");
        assert!(out.contains("0 row(s)"), "{out}");
        // With the index the warning disappears.
        feed(&mut s, "create index item name");
        let out = feed(&mut s, "forall i in item suchthat (name == \"x\")");
        assert!(!out.contains("warning"), "{out}");
    }

    fn corpus_path() -> String {
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus/negative.ode").to_string()
    }

    fn example_script_paths() -> Vec<String> {
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/scripts");
        [
            "stock_items.ode",
            "persons_students.ode",
            "parts_explosion.ode",
            "versioned_docs.ode",
        ]
        .iter()
        .map(|f| format!("{root}/{f}"))
        .collect()
    }

    #[test]
    fn example_scripts_are_analyzer_clean() {
        let report = check_files(&example_script_paths()).unwrap();
        assert_eq!(report.files, 4);
        assert!(report.statements >= 60, "{}", report.statements);
        assert!(!report.has_errors(), "{}", report.render_text());
        assert_eq!(report.findings.len(), 0, "{}", report.render_text());
    }

    #[test]
    fn negative_corpus_produces_exact_codes() {
        let report = check_files(&[corpus_path()]).unwrap();
        assert!(report.has_errors());
        let got: Vec<(usize, &str)> = report
            .findings
            .iter()
            .map(|f| (f.line, f.diag.code))
            .collect();
        let expected: Vec<(usize, &str)> = vec![
            (15, "A001"), // forall over unknown class
            (16, "A001"), // pnew into unknown class
            (17, "A001"), // create cluster for unknown class
            (18, "A002"), // create index on unknown member
            (19, "A001"), // delete from unknown class
            (20, "A002"), // unknown member in suchthat
            (21, "A002"), // unknown member via path
            (22, "A003"), // unknown method
            (23, "A004"), // bare ident in join predicate
            (24, "A004"), // $param in a query
            (27, "A005"), // string ordered against int
            (28, "A005"), // int compared with string
            (29, "A006"), // bool `by` key
            (30, "A007"), // pnew init type mismatch
            (31, "A007"), // update assignment type mismatch
            (32, "A002"), // update assigns unknown member
            (35, "A008"), // contradictory constraints in one class
            (36, "A008"), // contradiction with inherited constraint
            (37, "A009"), // perpetual trigger cycle (warning)
            (38, "A201"), // trigger re-satisfies its own condition (warning)
            (41, "A101"), // unsatisfiable suchthat (warning)
            (42, "A102"), // unindexed equality (warning)
            (43, "A103"), // is-test outside hierarchy (warning)
            (46, "A000"), // statement does not parse
        ];
        assert_eq!(got, expected, "{}", report.render_text());
        assert_eq!(report.errors(), 19);
        assert_eq!(report.warnings(), 5);
    }

    #[test]
    fn check_meta_command_reports_and_fails_typed() {
        let mut s = Session::in_memory();
        // Errors: surfaced as a typed analysis error (scripted sessions
        // exit non-zero; servers answer the analysis wire kind).
        match s.eval_statement(&format!(".check {}", corpus_path())) {
            EvalResult::Error(OdeError::Analysis(diags)) => {
                assert!(diags.iter().any(|d| d.code == "A001"), "{diags:?}");
                assert!(
                    diags.iter().any(|d| d.message.contains("negative.ode:15:")),
                    "{diags:?}"
                );
            }
            other => panic!("expected analysis error, got {other:?}"),
        }
        // Clean file: a summary comes back.
        let paths = example_script_paths();
        let out = feed(&mut s, &format!(".check {}", paths[0]));
        assert!(out.contains("0 error(s)"), "{out}");
        // Missing operand / unreadable file are usage errors.
        let out = feed(&mut s, ".check");
        assert!(out.contains("usage"), "{out}");
        let out = feed(&mut s, ".check /no/such/file.ode");
        assert!(out.contains("cannot read"), "{out}");
    }

    #[test]
    fn check_json_is_machine_readable() {
        let mut report = CheckReport::default();
        check_source("inline.ode", "forall x in nowhere", &mut report);
        let json = report.render_json();
        assert!(json.contains("\"errors\":1"), "{json}");
        assert!(json.contains("\"code\":\"A001\""), "{json}");
        assert!(json.contains("\"line\":1"), "{json}");
        assert!(json.contains("\"severity\":\"error\""), "{json}");
        assert!(json.contains("unknown class `nowhere`"), "{json}");
    }

    #[test]
    fn balanced_checks() {
        assert!(balanced("{}"));
        assert!(!balanced("{"));
        assert!(balanced("{ { } }"));
        // Braces inside string literals do not count.
        assert!(!balanced("class a { string s = \"}\";"));
        assert!(balanced("class a { string s = \"{\"; }"));
    }
}
