//! `ode-shell` — interactive Ode session.
//!
//! ```text
//! ode-shell                # in-memory scratch database
//! ode-shell /path/to/db    # durable database (created if absent)
//! ```

use std::io::{BufRead, Write};

use ode_shell::{LineResult, Session};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut session = match args.first().map(String::as_str) {
        None | Some("--memory") => {
            eprintln!("ode-shell: in-memory database (pass a directory to persist)");
            Session::in_memory()
        }
        Some("--help") | Some("-h") => {
            eprintln!("usage: ode-shell [--memory | <directory>]");
            return;
        }
        Some(dir) => match Session::open(std::path::Path::new(dir)) {
            Ok(s) => {
                eprintln!("ode-shell: database at {dir}");
                s
            }
            Err(e) => {
                eprintln!("ode-shell: cannot open {dir}: {e}");
                std::process::exit(1);
            }
        },
    };
    eprintln!("type `.help` for commands, `.exit` to leave");

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        let prompt = if session.is_continuing() {
            "  ... "
        } else {
            "ode> "
        };
        let _ = write!(out, "{prompt}");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        match session.line(line.trim_end_matches(['\n', '\r'])) {
            LineResult::Output(s) => {
                if !s.is_empty() {
                    let _ = writeln!(out, "{s}");
                }
            }
            LineResult::Continue => {}
            LineResult::Exit => break,
        }
    }
}
