//! `ode-shell` — interactive Ode session, local or remote.
//!
//! ```text
//! ode-shell                          # in-memory scratch database
//! ode-shell /path/to/db              # durable database (created if absent)
//! ode-shell --connect 127.0.0.1:7340 # remote session over an ode-server
//! ```
//!
//! Exit codes (so scripted sessions can tell failure classes apart):
//!
//! * `0` — clean session.
//! * `1` — the engine rejected at least one statement (parse error,
//!   constraint violation, …) in a *scripted* (non-TTY stdin) session;
//!   interactive sessions report the error and keep going.
//! * `2` — transport-class failure: connection refused, server at
//!   capacity, protocol mismatch, I/O timeout, server shutdown. Nothing
//!   (more) reached the engine.

use std::io::{BufRead, IsTerminal, Write};
use std::time::Duration;

use ode_shell::{check_files, EvalResult, Session};
use ode_wire::client::{Client, ClientError, RemoteLine};

const EXIT_ENGINE: i32 = 1;
const EXIT_TRANSPORT: i32 = 2;

const USAGE: &str =
    "usage: ode-shell [--memory | <directory> | --connect HOST:PORT | --check [--json] FILE...]";

fn main() {
    let mut connect: Option<String> = None;
    let mut dir: Option<String> = None;
    let mut memory = false;
    let mut check = false;
    let mut json = false;
    let mut check_paths: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return;
            }
            "--memory" => memory = true,
            "--check" => check = true,
            "--json" => json = true,
            "--connect" => match args.next() {
                Some(addr) => connect = Some(addr),
                None => {
                    eprintln!("ode-shell: --connect needs HOST:PORT");
                    eprintln!("{USAGE}");
                    std::process::exit(EXIT_TRANSPORT);
                }
            },
            other if other.starts_with('-') => {
                eprintln!("ode-shell: unknown flag `{other}`");
                eprintln!("{USAGE}");
                std::process::exit(EXIT_TRANSPORT);
            }
            other if check => check_paths.push(other.to_string()),
            other => dir = Some(other.to_string()),
        }
    }

    if check {
        std::process::exit(check_main(&check_paths, json));
    }
    if json {
        eprintln!("ode-shell: --json only makes sense with --check");
        std::process::exit(EXIT_TRANSPORT);
    }

    let code = match connect {
        Some(addr) => {
            if memory || dir.is_some() {
                eprintln!("ode-shell: --connect conflicts with a local database");
                std::process::exit(EXIT_TRANSPORT);
            }
            remote_repl(&addr)
        }
        None => local_repl(dir, memory),
    };
    std::process::exit(code);
}

/// `ode-shell --check [--json] FILE...` — batch-lint O++ files without
/// executing anything. Exit 0 when every file is clean of errors
/// (warnings allowed), [`EXIT_ENGINE`] when any error-severity finding
/// exists, [`EXIT_TRANSPORT`] for unreadable files.
fn check_main(paths: &[String], json: bool) -> i32 {
    if paths.is_empty() {
        eprintln!("ode-shell: --check needs at least one file");
        eprintln!("{USAGE}");
        return EXIT_TRANSPORT;
    }
    let report = match check_files(paths) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ode-shell: {e}");
            return EXIT_TRANSPORT;
        }
    };
    // Tolerate a closed pipe: `--check ... | head` / `| grep -q` is the
    // normal CI idiom and must not panic the linter.
    let mut out = std::io::stdout();
    let rendered = if json {
        report.render_json()
    } else {
        report.render_text()
    };
    let _ = writeln!(out, "{rendered}");
    if report.has_errors() {
        EXIT_ENGINE
    } else {
        0
    }
}

/// Read one line from stdin (with a prompt when interactive). `None` at
/// EOF or on a read error.
fn read_line(continuing: bool, interactive: bool) -> Option<String> {
    if interactive {
        let prompt = if continuing { "  ... " } else { "ode> " };
        let mut out = std::io::stdout();
        let _ = write!(out, "{prompt}");
        let _ = out.flush();
    }
    let mut line = String::new();
    match std::io::stdin().lock().read_line(&mut line) {
        Ok(0) => None,
        Ok(_) => Some(line.trim_end_matches(['\n', '\r']).to_string()),
        Err(e) => {
            eprintln!("read error: {e}");
            None
        }
    }
}

fn local_repl(dir: Option<String>, _memory: bool) -> i32 {
    let mut session = match &dir {
        None => {
            eprintln!("ode-shell: in-memory database (pass a directory to persist)");
            Session::in_memory()
        }
        Some(d) => match Session::open(std::path::Path::new(d)) {
            Ok(s) => {
                eprintln!("ode-shell: database at {d}");
                s
            }
            Err(e) => {
                eprintln!("ode-shell: cannot open {d}: {e}");
                return EXIT_TRANSPORT;
            }
        },
    };
    let interactive = std::io::stdin().is_terminal();
    if interactive {
        eprintln!("type `.help` for commands, `.exit` to leave");
    }
    let mut out = std::io::stdout();
    let mut engine_errors = 0usize;
    while let Some(line) = read_line(session.is_continuing(), interactive) {
        match session.eval_line(&line) {
            EvalResult::Output(s) => {
                if !s.is_empty() {
                    let _ = writeln!(out, "{s}");
                }
            }
            EvalResult::Error(e) => {
                engine_errors += 1;
                let _ = writeln!(out, "error: {e}");
            }
            EvalResult::Continue => {}
            EvalResult::Exit => break,
        }
    }
    // Interactive users saw the errors as they happened; scripts need the
    // exit code to notice them.
    if engine_errors > 0 && !interactive {
        EXIT_ENGINE
    } else {
        0
    }
}

fn remote_repl(addr: &str) -> i32 {
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ode-shell: {e}");
            return EXIT_TRANSPORT;
        }
    };
    let interactive = std::io::stdin().is_terminal();
    eprintln!("ode-shell: connected to {addr}");
    if interactive {
        eprintln!("type `.help` for commands, `.exit` to leave");
    }
    let mut out = std::io::stdout();
    let mut engine_errors = 0usize;
    let mut continuing = false;
    let mut live_subs = 0usize;
    while let Some(line) = read_line(continuing, interactive) {
        let trimmed = line.trim();
        // Client-side commands: `.server` aliases the serving-layer
        // stats control op, and the subscription commands manage live
        // push streams (the engine's `.stats` still works over the
        // wire).
        let result = if trimmed == ".server" {
            client.server_stats().map(RemoteLine::Output)
        } else if let Some(rest) = trimmed.strip_prefix(".subscribe ") {
            let mut it = rest.trim().splitn(2, char::is_whitespace);
            match (it.next(), it.next()) {
                (Some(cluster), Some(pred)) => client.subscribe(cluster, pred.trim()).map(|id| {
                    live_subs += 1;
                    RemoteLine::Output(format!(
                        "subscription {id} — matching commits print as \
                             `push ...`; `.watch [secs]` waits for them"
                    ))
                }),
                _ => {
                    let _ = writeln!(out, "usage: .subscribe <class> <predicate>");
                    continue;
                }
            }
        } else if let Some(rest) = trimmed.strip_prefix(".unsubscribe ") {
            match rest.trim().parse::<u64>() {
                Ok(id) => client.unsubscribe(id).map(|()| {
                    live_subs = live_subs.saturating_sub(1);
                    RemoteLine::Output(format!("unsubscribed {id}"))
                }),
                Err(_) => {
                    let _ = writeln!(out, "usage: .unsubscribe <id>");
                    continue;
                }
            }
        } else if trimmed == ".watch" || trimmed.starts_with(".watch ") {
            let secs: u64 = trimmed
                .strip_prefix(".watch")
                .unwrap()
                .trim()
                .parse()
                .unwrap_or(10);
            match watch_pushes(&mut client, &mut out, Duration::from_secs(secs)) {
                Ok(n) => {
                    continuing = false;
                    let _ = writeln!(out, "{n} push(es) in {secs}s");
                    continue;
                }
                Err(e) => {
                    eprintln!("ode-shell: {e}");
                    return EXIT_TRANSPORT;
                }
            }
        } else {
            client.line(&line)
        };
        match result {
            Ok(RemoteLine::Output(s)) => {
                continuing = false;
                if !s.is_empty() {
                    let _ = writeln!(out, "{s}");
                }
            }
            Ok(RemoteLine::Continue) => continuing = true,
            Ok(RemoteLine::Goodbye) => return 0,
            Err(ClientError::Engine(msg)) | Err(ClientError::Analysis(msg)) => {
                continuing = false;
                engine_errors += 1;
                let _ = writeln!(out, "error: {msg}");
            }
            Err(ClientError::Timeout(msg)) if interactive => {
                // The session survives a per-request timeout; keep going.
                continuing = false;
                let _ = writeln!(out, "error: {msg}");
            }
            Err(e) => {
                // Transport-class: the session is gone (or, for scripted
                // timeouts, no longer trustworthy). Fail loudly.
                eprintln!("ode-shell: {e}");
                return EXIT_TRANSPORT;
            }
        }
        // With a live subscription, pushes for commits made by this (or
        // any other) connection may already be waiting — deliver them
        // before the next prompt. The short wait covers the server's
        // outbox-flush tick; without subscriptions it costs nothing.
        if live_subs > 0 {
            match watch_pushes(&mut client, &mut out, Duration::from_millis(100)) {
                Ok(_) => {}
                Err(e) => {
                    eprintln!("ode-shell: {e}");
                    return EXIT_TRANSPORT;
                }
            }
        }
    }
    let _ = client.bye();
    if engine_errors > 0 && !interactive {
        EXIT_ENGINE
    } else {
        0
    }
}

/// Print pushes as they arrive until `budget` elapses with none
/// pending. Returns how many were delivered.
fn watch_pushes(
    client: &mut Client,
    out: &mut impl Write,
    budget: Duration,
) -> Result<usize, ClientError> {
    let mut n = 0usize;
    let mut wait = budget;
    loop {
        match client.next_push(wait)? {
            Some(p) => {
                n += 1;
                let _ = writeln!(
                    out,
                    "push [sub {} @ epoch {}] {}",
                    p.sub_id, p.epoch, p.object
                );
                // Drain whatever else is already queued promptly.
                wait = Duration::from_millis(50);
            }
            None => return Ok(n),
        }
    }
}
