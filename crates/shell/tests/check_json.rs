//! Golden-file pin of the `.check --json` output (the schema documented
//! on [`CheckReport::render_json`]): external consumers parse this, so
//! any change to key order, escaping, footprint rendering, or the
//! advisory-interference split must show up as a reviewed diff here.
//!
//! Regenerate after an intentional change with
//! `ODE_UPDATE_GOLDEN=1 cargo test -p ode-shell --test check_json`.

use ode_shell::{check_source, CheckReport};

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/check_json.golden"
);

#[test]
fn check_json_matches_golden() {
    let corpus = include_str!("corpus/golden.ode");
    let mut report = CheckReport::default();
    check_source("corpus/golden.ode", corpus, &mut report);
    let got = report.render_json();

    if std::env::var("ODE_UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN, format!("{got}\n")).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN)
        .expect("golden file missing; regenerate with ODE_UPDATE_GOLDEN=1");
    assert_eq!(
        got.trim(),
        want.trim(),
        "\n.check --json output drifted from tests/golden/check_json.golden;\n\
         if the change is intentional, regenerate with ODE_UPDATE_GOLDEN=1"
    );

    // Structural smoke on top of the byte-for-byte pin: the corpus is
    // findings-clean, produces a footprint per DML/query statement, and
    // surfaces at least one advisory interference pair.
    assert_eq!(report.errors(), 0);
    assert_eq!(report.warnings(), 0);
    assert_eq!(report.footprints.len(), 4);
    assert!(report.footprints.iter().any(|f| f.read_only));
    assert!(!report.interference.is_empty());
}
