//! Prometheus text-format exposition (version 0.0.4).
//!
//! Renders every engine/server counter into metric families a standard
//! scraper can ingest: counters as `*_total`, levels as gauges, and the
//! log₂ latency histograms as summaries (count, sum, and the approximate
//! p50/p99 the snapshot already carries). [`validate`] is a conservative
//! self-check of the grammar — metric-name/label syntax, one `TYPE` line
//! per family, numeric sample values — used by the CI smoke job and the
//! integration tests.

use crate::workstats::WorkStatRow;
use crate::{HistoSnapshot, ServerSnapshot, TelemetrySnapshot};

/// Incrementally built exposition text with per-family bookkeeping.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
    families: Vec<String>,
}

impl PromText {
    /// A fresh empty exposition.
    pub fn new() -> PromText {
        PromText::default()
    }

    /// Open a family: emits `# HELP` and `# TYPE`. Panics (in tests) on
    /// a duplicate family — the exposition format forbids them.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) {
        debug_assert!(
            !self.families.iter().any(|f| f == name),
            "duplicate family {name}"
        );
        self.families.push(name.to_string());
        self.out.push_str(&format!("# HELP {name} {help}\n"));
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    /// Emit one sample for the most recent family.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(&format!("{k}=\"{}\"", escape_label(v)));
            }
            self.out.push('}');
        }
        self.out.push_str(&format!(" {value}\n"));
    }

    /// Shorthand: a single unlabeled counter/gauge sample.
    fn single(&mut self, name: &str, kind: &str, help: &str, value: u64) {
        self.family(name, kind, help);
        self.sample(name, &[], value as f64);
    }

    /// A latency histogram as a Prometheus summary, in seconds.
    fn summary(&mut self, name: &str, help: &str, h: &HistoSnapshot) {
        self.family(name, "summary", help);
        self.sample(name, &[("quantile", "0.5")], h.p50_ns as f64 / 1e9);
        self.sample(name, &[("quantile", "0.99")], h.p99_ns as f64 / 1e9);
        self.sample(&format!("{name}_sum"), &[], h.sum_ns as f64 / 1e9);
        self.sample(&format!("{name}_count"), &[], h.count as f64);
    }

    /// The finished exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render the full exposition: engine telemetry, optional serving-layer
/// telemetry, workload statistics, and flight-recorder volume.
pub fn render(
    engine: &TelemetrySnapshot,
    server: Option<&ServerSnapshot>,
    workload: &[WorkStatRow],
    spans_recorded: u64,
) -> String {
    let mut p = PromText::new();

    let s = &engine.storage;
    for (name, help, v) in [
        (
            "ode_storage_pager_hits_total",
            "Buffer-pool page requests served from the pool",
            s.pager_hits,
        ),
        (
            "ode_storage_pager_misses_total",
            "Page requests that read the data file",
            s.pager_misses,
        ),
        (
            "ode_storage_pager_evictions_total",
            "Frames evicted to make room",
            s.pager_evictions,
        ),
        (
            "ode_storage_pager_writebacks_total",
            "Dirty frames written back",
            s.pager_writebacks,
        ),
        (
            "ode_storage_record_reads_total",
            "Record reads served by the store",
            s.record_reads,
        ),
        (
            "ode_storage_record_writes_total",
            "Records written by commit batches",
            s.record_writes,
        ),
        (
            "ode_storage_wal_appends_total",
            "WAL commit groups appended",
            s.wal_appends,
        ),
        (
            "ode_storage_wal_fsyncs_total",
            "WAL fsyncs issued",
            s.wal_fsyncs,
        ),
        (
            "ode_storage_commits_total",
            "Committed store batches",
            s.commits,
        ),
        (
            "ode_storage_faults_injected_total",
            "Faults injected by a fault-injection wrapper",
            s.faults_injected,
        ),
        (
            "ode_storage_checkpoint_failures_total",
            "Checkpoint attempts that failed",
            s.checkpoint_failures,
        ),
        (
            "ode_storage_commit_groups_total",
            "Group-commit fsync cohorts (one shared durability phase each)",
            s.commit_groups,
        ),
        (
            "ode_storage_commit_group_members_total",
            "Commits that rode a group-commit cohort",
            s.commit_group_members,
        ),
    ] {
        p.single(name, "counter", help, v);
    }
    p.single(
        "ode_storage_wal_bytes",
        "gauge",
        "Bytes in the WAL since the last checkpoint",
        s.wal_bytes,
    );
    p.single(
        "ode_storage_replayed_groups",
        "gauge",
        "WAL commit groups replayed at the last open",
        s.replayed_groups,
    );

    let t = &engine.txn;
    for (name, help, v) in [
        ("ode_txn_begun_total", "Transactions begun", t.begun),
        (
            "ode_txn_committed_total",
            "Transactions committed",
            t.committed,
        ),
        (
            "ode_txn_read_txns_total",
            "Snapshot read transactions begun",
            t.read_txns,
        ),
        (
            "ode_txn_write_txns_total",
            "Write transactions begun",
            t.write_txns,
        ),
        (
            "ode_txn_release_errors_total",
            "Reservation releases that failed during rollback",
            t.release_errors,
        ),
        (
            "ode_txn_commit_retries_total",
            "Store-commit attempts retried after transient failures",
            t.commit_retries,
        ),
        (
            "ode_txn_conflicts_total",
            "Commits rejected by optimistic validation (write conflicts)",
            t.conflicts,
        ),
        (
            "ode_txn_ranged_scans_total",
            "Extent scans recorded with analyzer-proven key ranges",
            t.ranged_scans,
        ),
        (
            "ode_txn_narrowed_validations_total",
            "Commit validations that passed via range-disjointness proofs",
            t.narrowed_validations,
        ),
    ] {
        p.single(name, "counter", help, v);
    }
    p.single(
        "ode_txn_conflict_pressure",
        "gauge",
        "Footprint-overlap pressure feeding adaptive retry backoff",
        t.conflict_pressure,
    );
    p.family(
        "ode_txn_aborted_total",
        "counter",
        "Transactions rolled back, by cause",
    );
    p.sample(
        "ode_txn_aborted_total",
        &[("cause", "constraint")],
        t.aborted_constraint as f64,
    );
    p.sample(
        "ode_txn_aborted_total",
        &[("cause", "other")],
        t.aborted_other as f64,
    );
    p.summary(
        "ode_txn_commit_latency_seconds",
        "Wall-clock commit latency",
        &t.commit_latency,
    );
    p.summary(
        "ode_txn_gate_wait_seconds",
        "Write-gate acquisition wait",
        &t.gate_wait,
    );

    let q = &engine.query;
    for (name, help, v) in [
        (
            "ode_query_foralls_total",
            "forall iterations started",
            q.foralls,
        ),
        ("ode_query_joins_total", "Join queries started", q.joins),
        (
            "ode_query_clusters_visited_total",
            "Cluster heaps enumerated by extent scans",
            q.clusters_visited,
        ),
        (
            "ode_query_objects_scanned_total",
            "Objects materialized as candidates",
            q.objects_scanned,
        ),
        (
            "ode_query_predicate_evals_total",
            "suchthat predicate evaluations",
            q.predicate_evals,
        ),
        (
            "ode_query_index_probes_total",
            "Index lookups/ranges that answered a conjunct",
            q.index_probes,
        ),
        (
            "ode_query_deep_extent_scans_total",
            "Passes that enumerated a deep extent",
            q.deep_extent_scans,
        ),
        (
            "ode_query_fixpoint_rounds_total",
            "Fixpoint re-evaluation rounds",
            q.fixpoint_rounds,
        ),
        (
            "ode_query_fixpoint_new_objects_total",
            "Newly visited objects across fixpoint rounds",
            q.fixpoint_new_objects,
        ),
        (
            "ode_query_overlay_clones_total",
            "Write-set states cloned into query results (index-probe fold-in only)",
            q.overlay_clones,
        ),
    ] {
        p.single(name, "counter", help, v);
    }

    let v = &engine.versions;
    p.single(
        "ode_version_newversions_total",
        "counter",
        "newversion calls",
        v.newversions,
    );
    p.single(
        "ode_version_generic_derefs_total",
        "counter",
        "Generic references resolved through a version anchor",
        v.generic_derefs,
    );
    p.single(
        "ode_version_specific_derefs_total",
        "counter",
        "Pinned-version dereferences",
        v.specific_derefs,
    );

    let g = &engine.triggers;
    for (name, help, val) in [
        (
            "ode_trigger_activations_total",
            "Trigger activations requested",
            g.activations,
        ),
        (
            "ode_trigger_condition_evals_total",
            "Trigger-condition evaluations at commit",
            g.condition_evals,
        ),
        ("ode_trigger_firings_total", "Triggers fired", g.firings),
        (
            "ode_trigger_action_failures_total",
            "Fired actions whose own transaction failed",
            g.action_failures,
        ),
        (
            "ode_trigger_deferred_actions_total",
            "Firings deferred past the commit point",
            g.deferred_actions,
        ),
        (
            "ode_trigger_cascade_exhausted_total",
            "Firings refused at the cascade depth limit",
            g.cascade_exhausted,
        ),
    ] {
        p.single(name, "counter", help, val);
    }
    p.single(
        "ode_trigger_max_cascade_depth",
        "gauge",
        "Deepest trigger cascade observed",
        g.max_cascade_depth,
    );

    let sc = &engine.sched;
    for (name, help, val) in [
        (
            "ode_sched_enqueued_total",
            "Trigger events durably enqueued by commits",
            sc.enqueued,
        ),
        (
            "ode_sched_drained_total",
            "Events whose action transaction completed",
            sc.drained,
        ),
        (
            "ode_sched_retries_total",
            "Action attempts re-queued after transient failures",
            sc.retries,
        ),
        (
            "ode_sched_dead_letters_total",
            "Events abandoned after exhausting retries",
            sc.dead_letters,
        ),
        (
            "ode_sched_overflow_dropped_total",
            "Subscription checks dropped at queue capacity",
            sc.overflow_dropped,
        ),
    ] {
        p.single(name, "counter", help, val);
    }
    p.single(
        "ode_sched_queue_depth",
        "gauge",
        "Jobs currently queued in the scheduler",
        sc.queue_depth,
    );
    p.single(
        "ode_sched_suspended",
        "gauge",
        "Trigger names currently suspended",
        sc.suspended,
    );
    p.single(
        "ode_sched_queue_high_water",
        "gauge",
        "Most jobs ever queued at once",
        sc.queue_high_water,
    );
    p.summary(
        "ode_sched_drain_lag_seconds",
        "Enqueue-to-dispatch latency of scheduled events",
        &sc.drain_lag,
    );

    let a = &engine.analyze;
    p.single(
        "ode_analyze_passes_total",
        "counter",
        "Statements analyzed",
        a.passes,
    );
    p.single(
        "ode_analyze_errors_total",
        "counter",
        "Statements rejected by the analyzer",
        a.errors,
    );
    p.single(
        "ode_analyze_warnings_total",
        "counter",
        "Analyzer warnings",
        a.warnings,
    );
    p.single(
        "ode_analyze_footprints_total",
        "counter",
        "Statement footprints computed",
        a.footprints,
    );
    p.single(
        "ode_analyze_read_only_proofs_total",
        "counter",
        "Statements proven read-only by their footprint",
        a.read_only_proofs,
    );
    p.summary(
        "ode_analyze_latency_seconds",
        "Static-analysis pass latency",
        &a.latency,
    );

    if let Some(sv) = server {
        for (name, help, val) in [
            (
                "ode_server_accepted_total",
                "Connections admitted",
                sv.accepted,
            ),
            (
                "ode_server_handshake_failures_total",
                "Connections dropped during the handshake",
                sv.handshake_failures,
            ),
            (
                "ode_server_requests_total",
                "Requests executed",
                sv.requests,
            ),
            (
                "ode_server_engine_errors_total",
                "Requests answered with an engine error",
                sv.engine_errors,
            ),
            (
                "ode_server_timed_out_total",
                "Requests that exceeded the per-request budget",
                sv.timed_out,
            ),
            (
                "ode_server_socket_errors_total",
                "Socket-configuration failures survived",
                sv.socket_errors,
            ),
            (
                "ode_server_pushes_sent_total",
                "Push frames written to subscriber connections",
                sv.pushes_sent,
            ),
            (
                "ode_server_push_dropped_total",
                "Push frames dropped at a full outbox or closed connection",
                sv.push_dropped,
            ),
        ] {
            p.single(name, "counter", help, val);
        }
        p.family(
            "ode_server_rejected_total",
            "counter",
            "Connections refused, by reason",
        );
        p.sample(
            "ode_server_rejected_total",
            &[("reason", "admission")],
            sv.rejected_admission as f64,
        );
        p.sample(
            "ode_server_rejected_total",
            &[("reason", "shutdown")],
            sv.rejected_shutdown as f64,
        );
        p.family(
            "ode_server_bytes_total",
            "counter",
            "Wire bytes, by direction",
        );
        p.sample(
            "ode_server_bytes_total",
            &[("direction", "in")],
            sv.bytes_in as f64,
        );
        p.sample(
            "ode_server_bytes_total",
            &[("direction", "out")],
            sv.bytes_out as f64,
        );
        p.single(
            "ode_server_active_connections",
            "gauge",
            "Connections currently open",
            sv.active_connections,
        );
        p.single(
            "ode_server_max_concurrent",
            "gauge",
            "Most connections ever open at once",
            sv.max_concurrent,
        );
        p.single(
            "ode_server_subscriptions",
            "gauge",
            "Live subscriptions currently registered",
            sv.subscriptions,
        );
        p.single(
            "ode_server_push_outbox_depth",
            "gauge",
            "Push frames buffered in per-connection outboxes",
            sv.push_outbox_depth,
        );
        p.summary(
            "ode_server_request_latency_seconds",
            "Request execution latency",
            &sv.request_latency,
        );
    }

    // Workload statistics: one labeled family per counter kind. Keys are
    // `cluster:<class>` or `index:<class>.<field>`.
    let clusters: Vec<&WorkStatRow> = workload
        .iter()
        .filter(|r| r.key.starts_with("cluster:"))
        .collect();
    let indexes: Vec<&WorkStatRow> = workload
        .iter()
        .filter(|r| r.key.starts_with("index:"))
        .collect();
    if !clusters.is_empty() {
        p.family(
            "ode_cluster_reads_total",
            "counter",
            "Objects read per cluster",
        );
        for r in &clusters {
            p.sample(
                "ode_cluster_reads_total",
                &[("cluster", &r.key[8..])],
                r.reads as f64,
            );
        }
        p.family(
            "ode_cluster_writes_total",
            "counter",
            "Records written per cluster",
        );
        for r in &clusters {
            p.sample(
                "ode_cluster_writes_total",
                &[("cluster", &r.key[8..])],
                r.writes as f64,
            );
        }
        p.family(
            "ode_cluster_scans_total",
            "counter",
            "Extent scans per cluster",
        );
        for r in &clusters {
            p.sample(
                "ode_cluster_scans_total",
                &[("cluster", &r.key[8..])],
                r.scans as f64,
            );
        }
    }
    if !indexes.is_empty() {
        p.family(
            "ode_index_reads_total",
            "counter",
            "Probes answered per index",
        );
        for r in &indexes {
            p.sample(
                "ode_index_reads_total",
                &[("index", &r.key[6..])],
                r.reads as f64,
            );
        }
    }

    p.single(
        "ode_trace_spans_recorded_total",
        "counter",
        "Spans written into the flight recorder",
        spans_recorded,
    );

    p.finish()
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Conservative validation of exposition text: every sample line parses
/// (name, optional label set, float value), names and labels are
/// syntactically legal, and no family has two `TYPE` lines.
pub fn validate(text: &str) -> Result<(), String> {
    let mut families: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| Err(format!("line {}: {msg}: {line}", lineno + 1));
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if !valid_metric_name(name) {
                return err("bad family name");
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "summary" | "histogram" | "untyped"
            ) {
                return err("bad family kind");
            }
            if families.iter().any(|f| f == name) {
                return err("duplicate TYPE for family");
            }
            families.push(name.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        // Sample: name[{k="v",…}] value
        let (name_part, value_part) = match line.split_once(' ') {
            Some(pair) => pair,
            None => return err("sample missing value"),
        };
        let name = match name_part.split_once('{') {
            Some((n, labels)) => {
                let labels = match labels.strip_suffix('}') {
                    Some(l) => l,
                    None => return err("unterminated label set"),
                };
                for pair in split_labels(labels) {
                    let (k, v) = match pair.split_once('=') {
                        Some(kv) => kv,
                        None => return err("label without ="),
                    };
                    if !valid_label_name(k) {
                        return err("bad label name");
                    }
                    if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
                        return err("unquoted label value");
                    }
                }
                n
            }
            None => name_part,
        };
        if !valid_metric_name(name) {
            return err("bad metric name");
        }
        if value_part.trim().parse::<f64>().is_err() {
            return err("non-numeric sample value");
        }
        samples += 1;
    }
    if families.is_empty() || samples == 0 {
        return Err("no metric families found".to_string());
    }
    Ok(())
}

// Split a label body on commas outside quotes.
fn split_labels(body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        match c {
            '\\' if in_quotes => escaped = !escaped,
            '"' if !escaped => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                out.push(&body[start..i]);
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    if start < body.len() {
        out.push(&body[start..]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineTelemetry, ServerTelemetry, StorageSnapshot};

    fn sample_workload() -> Vec<WorkStatRow> {
        vec![
            WorkStatRow {
                key: "cluster:stockitem".into(),
                reads: 10,
                writes: 3,
                scans: 2,
            },
            WorkStatRow {
                key: "index:stockitem.quantity".into(),
                reads: 4,
                ..WorkStatRow::default()
            },
        ]
    }

    #[test]
    fn render_validates_and_covers_families() {
        let tel = EngineTelemetry::default();
        tel.txn.begun.add(2);
        tel.txn.commit_latency.record_ns(12_000);
        let engine = tel.snapshot(StorageSnapshot::default());
        let server = ServerTelemetry::default().snapshot();
        let text = render(&engine, Some(&server), &sample_workload(), 7);
        validate(&text).unwrap();
        for family in [
            "ode_txn_begun_total 2",
            "# TYPE ode_txn_commit_latency_seconds summary",
            "ode_txn_commit_latency_seconds{quantile=\"0.99\"}",
            "ode_server_requests_total",
            "ode_sched_queue_depth",
            "ode_sched_dead_letters_total",
            "ode_trigger_cascade_exhausted_total",
            "ode_server_subscriptions",
            "ode_server_pushes_sent_total",
            "ode_cluster_reads_total{cluster=\"stockitem\"} 10",
            "ode_index_reads_total{index=\"stockitem.quantity\"} 4",
            "ode_trace_spans_recorded_total 7",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }

    #[test]
    fn render_without_server_still_validates() {
        let engine = EngineTelemetry::default().snapshot(StorageSnapshot::default());
        let text = render(&engine, None, &[], 0);
        validate(&text).unwrap();
        assert!(!text.contains("ode_server_"));
    }

    #[test]
    fn validate_rejects_malformed_expositions() {
        assert!(validate("").is_err());
        assert!(validate("# TYPE ode_x counter\n# TYPE ode_x counter\node_x 1\n").is_err());
        assert!(validate("# TYPE ode_x counter\n1ode_x 1\n").is_err());
        assert!(validate("# TYPE ode_x counter\node_x notanumber\n").is_err());
        assert!(validate("# TYPE ode_x counter\node_x{bad-label=\"v\"} 1\n").is_err());
        assert!(validate("# TYPE ode_x counter\node_x{l=unquoted} 1\n").is_err());
        assert!(validate("# TYPE ode_x wrongkind\node_x 1\n").is_err());
        // A good one passes.
        validate("# HELP ode_x help\n# TYPE ode_x counter\node_x{l=\"a,b\"} 1\n").unwrap();
    }

    #[test]
    fn label_values_are_escaped() {
        let mut p = PromText::new();
        p.family("ode_t", "counter", "h");
        p.sample("ode_t", &[("k", "a\"b\\c")], 1.0);
        let text = p.finish();
        validate(&text).unwrap();
        assert!(text.contains("a\\\"b\\\\c"), "{text}");
    }
}
