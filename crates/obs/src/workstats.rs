//! Per-cluster / per-index workload statistics.
//!
//! The statistics substrate for the future cost-based planner (ROADMAP
//! item 3): every query pass and commit batch bumps read/write/scan
//! counters keyed by the cluster (or index) it touched. The engine
//! persists a snapshot into the catalog at checkpoint so the counts
//! survive restarts and accumulate across runs.
//!
//! Keys are plain strings chosen by the engine: `cluster:<class>` and
//! `index:<class>.<field>`. Keeping the registry string-keyed keeps this
//! crate dependency-free.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use crate::Counter;

/// Live counters for one cluster or index.
#[derive(Debug, Default)]
pub struct WorkStat {
    /// Objects/entries read (candidates materialized, index probes).
    pub reads: Counter,
    /// Records written by committed batches.
    pub writes: Counter,
    /// Extent scans that enumerated this cluster.
    pub scans: Counter,
}

/// One registry entry, frozen.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkStatRow {
    /// `cluster:<class>` or `index:<class>.<field>`.
    pub key: String,
    /// See [`WorkStat::reads`].
    pub reads: u64,
    /// See [`WorkStat::writes`].
    pub writes: u64,
    /// See [`WorkStat::scans`].
    pub scans: u64,
}

/// The keyed counter registry. Lookup takes a read lock on the key map;
/// the counters themselves are relaxed atomics, so the hot path after
/// the first touch of a key is lock-free.
#[derive(Debug, Default)]
pub struct WorkloadStats {
    map: RwLock<HashMap<String, Arc<WorkStat>>>,
}

fn read_map(
    map: &RwLock<HashMap<String, Arc<WorkStat>>>,
) -> std::sync::RwLockReadGuard<'_, HashMap<String, Arc<WorkStat>>> {
    match map.read() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl WorkloadStats {
    /// A fresh empty registry.
    pub fn new() -> WorkloadStats {
        WorkloadStats::default()
    }

    /// The counters for `key`, created on first touch.
    pub fn entry(&self, key: &str) -> Arc<WorkStat> {
        if let Some(stat) = read_map(&self.map).get(key) {
            return Arc::clone(stat);
        }
        let mut map = match self.map.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        Arc::clone(map.entry(key.to_string()).or_default())
    }

    /// Add a persisted row's counts into the registry (catalog replay at
    /// open; counts accumulate across restarts).
    pub fn absorb(&self, row: &WorkStatRow) {
        let stat = self.entry(&row.key);
        stat.reads.add(row.reads);
        stat.writes.add(row.writes);
        stat.scans.add(row.scans);
    }

    /// Every entry, frozen and sorted by key.
    pub fn snapshot(&self) -> Vec<WorkStatRow> {
        let mut out: Vec<WorkStatRow> = read_map(&self.map)
            .iter()
            .map(|(k, s)| WorkStatRow {
                key: k.clone(),
                reads: s.reads.get(),
                writes: s.writes.get(),
                scans: s.scans.get(),
            })
            .collect();
        out.sort_by(|a, b| a.key.cmp(&b.key));
        out
    }

    /// Zero every counter (entries stay registered).
    pub fn reset(&self) {
        for stat in read_map(&self.map).values() {
            stat.reads.reset();
            stat.writes.reset();
            stat.scans.reset();
        }
    }

    /// Flat `(key, value)` rows for line-oriented display (`.stats`).
    pub fn rows(&self) -> Vec<(String, String)> {
        self.snapshot()
            .into_iter()
            .map(|r| {
                (
                    format!("workload.{}", r.key),
                    format!("reads={} writes={} scans={}", r.reads, r.writes, r.scans),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_accumulates_and_snapshots_sorted() {
        let ws = WorkloadStats::new();
        ws.entry("cluster:stockitem").reads.add(5);
        ws.entry("cluster:stockitem").scans.inc();
        ws.entry("cluster:apple").writes.add(2);
        let snap = ws.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].key, "cluster:apple");
        assert_eq!(snap[0].writes, 2);
        assert_eq!(snap[1].reads, 5);
        assert_eq!(snap[1].scans, 1);
    }

    #[test]
    fn absorb_adds_persisted_counts() {
        let ws = WorkloadStats::new();
        ws.entry("cluster:a").reads.add(1);
        ws.absorb(&WorkStatRow {
            key: "cluster:a".into(),
            reads: 10,
            writes: 3,
            scans: 2,
        });
        let snap = ws.snapshot();
        assert_eq!(snap[0].reads, 11);
        assert_eq!(snap[0].writes, 3);
    }

    #[test]
    fn reset_zeroes_but_keeps_keys() {
        let ws = WorkloadStats::new();
        ws.entry("index:a.f").reads.add(4);
        ws.reset();
        let snap = ws.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].reads, 0);
    }
}
