//! The slow-query log: a bounded, in-memory ring of statements that
//! exceeded a configurable latency threshold, each captured with its
//! `explain` plan and per-stage span timings.
//!
//! The shell session (local or server-side) measures every statement it
//! runs and offers the entry to the database's log; [`SlowQueryLog`]
//! keeps it only when the latency crosses the threshold. `.slow` lists
//! the entries; `.slow <ms>` moves the threshold at runtime (the CI
//! smoke job sets it to 0 to force an entry).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::flight::TraceId;

/// Default threshold: 100 ms.
pub const DEFAULT_SLOW_THRESHOLD_NS: u64 = 100_000_000;

/// Entries retained (oldest evicted first).
pub const SLOW_LOG_CAPACITY: usize = 64;

/// One logged slow statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    /// The request's trace id (zero when untraced).
    pub trace: TraceId,
    /// The statement text as the session received it.
    pub statement: String,
    /// End-to-end statement latency.
    pub total_ns: u64,
    /// The captured `explain` rows (target, strategy, objects scanned…);
    /// empty for statements without a query pass.
    pub plan: Vec<(String, String)>,
    /// Per-stage span timings `(stage, ns)` from the flight recorder.
    pub stages: Vec<(String, u64)>,
    /// Wall-clock capture time (unix milliseconds).
    pub at_ms: u64,
}

/// The bounded log plus its runtime-adjustable threshold.
#[derive(Debug)]
pub struct SlowQueryLog {
    threshold_ns: AtomicU64,
    entries: Mutex<VecDeque<SlowQuery>>,
}

impl Default for SlowQueryLog {
    fn default() -> Self {
        SlowQueryLog::with_threshold_ns(DEFAULT_SLOW_THRESHOLD_NS)
    }
}

impl SlowQueryLog {
    /// A fresh empty log with the given threshold.
    pub fn with_threshold_ns(threshold_ns: u64) -> SlowQueryLog {
        SlowQueryLog {
            threshold_ns: AtomicU64::new(threshold_ns),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// The current threshold in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns.load(Ordering::Relaxed)
    }

    /// Move the threshold (0 logs everything).
    pub fn set_threshold_ns(&self, ns: u64) {
        self.threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// Offer a measured statement; it is kept only when `total_ns`
    /// reaches the threshold. Returns whether it was logged.
    pub fn offer(&self, mut entry: SlowQuery) -> bool {
        if entry.total_ns < self.threshold_ns() {
            return false;
        }
        entry.at_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut entries = match self.entries.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if entries.len() == SLOW_LOG_CAPACITY {
            entries.pop_front();
        }
        entries.push_back(entry);
        true
    }

    /// Logged entries, newest first.
    pub fn snapshot(&self) -> Vec<SlowQuery> {
        let entries = match self.entries.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        entries.iter().rev().cloned().collect()
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        match self.entries.lock() {
            Ok(g) => g.len(),
            Err(p) => p.into_inner().len(),
        }
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (the threshold is unchanged).
    pub fn clear(&self) {
        match self.entries.lock() {
            Ok(mut g) => g.clear(),
            Err(p) => p.into_inner().clear(),
        }
    }

    /// Human-oriented rendering for `.slow`.
    pub fn render(&self) -> String {
        let entries = self.snapshot();
        let mut out = format!(
            "slow-query log: {} entr{} (threshold {:.1} ms)\n",
            entries.len(),
            if entries.len() == 1 { "y" } else { "ies" },
            self.threshold_ns() as f64 / 1e6
        );
        for e in entries {
            out.push_str(&format!(
                "  [{:.2} ms] trace {} `{}`\n",
                e.total_ns as f64 / 1e6,
                e.trace,
                e.statement
            ));
            for (k, v) in &e.plan {
                out.push_str(&format!("      plan.{k}: {v}\n"));
            }
            for (stage, ns) in &e.stages {
                out.push_str(&format!(
                    "      stage.{stage}: {:.2} ms\n",
                    *ns as f64 / 1e6
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ns: u64, stmt: &str) -> SlowQuery {
        SlowQuery {
            trace: TraceId(7),
            statement: stmt.to_string(),
            total_ns: ns,
            plan: vec![("strategy".into(), "deep extent scan".into())],
            stages: vec![("analyze".into(), 1_000), ("commit".into(), 2_000)],
            at_ms: 0,
        }
    }

    #[test]
    fn threshold_gates_entries() {
        let log = SlowQueryLog::with_threshold_ns(1_000_000);
        assert!(!log.offer(entry(999_999, "fast")));
        assert!(log.offer(entry(1_000_000, "slow")));
        assert_eq!(log.len(), 1);
        log.set_threshold_ns(0);
        assert!(log.offer(entry(1, "all")));
        let snap = log.snapshot();
        assert_eq!(snap[0].statement, "all"); // newest first
    }

    #[test]
    fn capacity_is_bounded() {
        let log = SlowQueryLog::with_threshold_ns(0);
        for i in 0..(SLOW_LOG_CAPACITY + 10) {
            log.offer(entry(10, &format!("q{i}")));
        }
        assert_eq!(log.len(), SLOW_LOG_CAPACITY);
        // Oldest were evicted.
        assert!(log.snapshot().iter().all(|e| e.statement != "q0"));
    }

    #[test]
    fn render_shows_plan_and_stages() {
        let log = SlowQueryLog::with_threshold_ns(0);
        log.offer(entry(5_000_000, "forall s in stockitem"));
        let text = log.render();
        assert!(text.contains("forall s in stockitem"), "{text}");
        assert!(text.contains("plan.strategy: deep extent scan"), "{text}");
        assert!(text.contains("stage.commit"), "{text}");
    }
}
