//! # ode-obs
//!
//! Engine-wide telemetry for Ode. The paper's environment half promises an
//! *observable* system; this crate supplies the primitives the engine
//! threads through every layer:
//!
//! * [`Counter`] — a relaxed atomic counter cheap enough for hot paths,
//! * [`MaxGauge`] — a high-watermark gauge (trigger cascade depth),
//! * [`LatencyHisto`] — a log₂-bucketed nanosecond histogram (commit
//!   latency),
//! * [`EngineTelemetry`] — the live counter tree, grouped by subsystem
//!   (transactions, queries, versions, triggers),
//! * [`TelemetrySnapshot`] — a plain-data copy (including substrate
//!   counters) with [`TelemetrySnapshot::delta`] for before/after
//!   measurement and [`TelemetrySnapshot::to_json`] for reports,
//! * [`QueryProfile`] — the per-query execution profile behind
//!   `explain forall …`,
//! * [`TraceEvent`]/[`TraceSink`] — begin/end span events for
//!   transaction, query, and trigger scopes, delivered to a host callback,
//! * [`flight`] — the always-on flight recorder: per-request [`TraceId`]s
//!   and a bounded lock-free span ring dumped by `.trace` or on panic,
//! * [`prom`] — Prometheus text-format exposition of every metric here,
//! * [`logging`] — level-filtered structured JSON logging,
//! * [`slowlog`] — the bounded slow-query log with captured plans,
//! * [`workstats`] — per-cluster/per-index read/write/scan statistics,
//!   persisted into the catalog as the future optimizer's substrate.
//!
//! The crate is dependency-free so every layer of the workspace can use it.

pub mod flight;
pub mod logging;
pub mod prom;
pub mod slowlog;
pub mod workstats;

pub use flight::{
    current_trace, render_spans, set_trace, FlightRecorder, SpanGuard, SpanRecord, SpanStage,
    TraceCtx, TraceId, DEFAULT_FLIGHT_CAPACITY,
};
pub use slowlog::{SlowQuery, SlowQueryLog, DEFAULT_SLOW_THRESHOLD_NS};
pub use workstats::{WorkStat, WorkStatRow, WorkloadStats};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ----------------------------------------------------------- primitives

/// A monotonically increasing event counter. All operations use relaxed
/// ordering: counts are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zero the counter (benches and tests measure deltas).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// An up/down level gauge (e.g. connections currently open). Like
/// [`Counter`], all operations are relaxed: the value is a statistic.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Raise the level by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Lower the level by one (saturating at zero).
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Set the level directly (for gauges mirrored from an external
    /// source of truth, e.g. a queue whose depth is recomputed on every
    /// transition).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A high-watermark gauge: remembers the largest observed value.
#[derive(Debug, Default)]
pub struct MaxGauge(AtomicU64);

impl MaxGauge {
    /// A fresh zeroed gauge.
    pub const fn new() -> MaxGauge {
        MaxGauge(AtomicU64::new(0))
    }

    /// Record `v`; the gauge keeps the maximum seen.
    pub fn observe(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Largest value observed since the last reset.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of log₂ buckets in a [`LatencyHisto`]. Bucket `i` holds samples
/// with `ns < 2^i` (the last bucket absorbs everything larger), so the
/// range spans 1 ns to ~17 minutes — ample for commit latencies.
pub const HISTO_BUCKETS: usize = 40;

/// A lock-free latency histogram with power-of-two nanosecond buckets.
/// Recording is two relaxed atomic adds; quantiles are approximate (bucket
/// upper bounds), which is plenty for spotting fsync cliffs.
#[derive(Debug)]
pub struct LatencyHisto {
    buckets: [AtomicU64; HISTO_BUCKETS],
    sum_ns: AtomicU64,
}

impl Default for LatencyHisto {
    fn default() -> Self {
        LatencyHisto {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHisto {
    /// A fresh empty histogram.
    pub fn new() -> LatencyHisto {
        LatencyHisto::default()
    }

    fn bucket_of(ns: u64) -> usize {
        // Bucket i covers [2^(i-1), 2^i); 0 ns lands in bucket 0.
        ((64 - ns.leading_zeros()) as usize).min(HISTO_BUCKETS - 1)
    }

    /// Record one sample.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Plain-data copy with approximate quantiles.
    pub fn snapshot(&self) -> HistoSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let sum_ns = self.sum_ns.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = ((count as f64) * q).ceil() as u64;
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= target {
                    // Upper bound of bucket i.
                    return 1u64 << i.min(63);
                }
            }
            1u64 << (HISTO_BUCKETS - 1)
        };
        let max_ns = counts
            .iter()
            .rposition(|&c| c > 0)
            .map(|i| 1u64 << i.min(63))
            .unwrap_or(0);
        HistoSnapshot {
            count,
            sum_ns,
            p50_ns: quantile(0.50),
            p99_ns: quantile(0.99),
            max_ns,
        }
    }

    /// Zero every bucket.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum_ns.store(0, Ordering::Relaxed);
    }
}

/// Plain-data summary of a [`LatencyHisto`]. Quantiles are bucket upper
/// bounds (within 2× of the true value by construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistoSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, in nanoseconds.
    pub sum_ns: u64,
    /// Approximate median, in nanoseconds.
    pub p50_ns: u64,
    /// Approximate 99th percentile, in nanoseconds.
    pub p99_ns: u64,
    /// Approximate maximum, in nanoseconds.
    pub max_ns: u64,
}

impl HistoSnapshot {
    /// Arithmetic mean in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Counter-style delta: count and sum subtract; the quantile fields
    /// keep their current values (quantiles do not subtract meaningfully).
    pub fn delta(&self, baseline: &HistoSnapshot) -> HistoSnapshot {
        HistoSnapshot {
            count: self.count.saturating_sub(baseline.count),
            sum_ns: self.sum_ns.saturating_sub(baseline.sum_ns),
            ..*self
        }
    }

    fn json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"count\":{},\"sum_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
            self.count, self.sum_ns, self.p50_ns, self.p99_ns, self.max_ns
        ));
    }
}

// -------------------------------------------------------- live counters

/// Transaction-layer counters.
#[derive(Debug, Default)]
pub struct TxnTelemetry {
    /// Transactions begun.
    pub begun: Counter,
    /// Transactions committed.
    pub committed: Counter,
    /// Rollbacks caused by a constraint violation (§5's abort semantics).
    pub aborted_constraint: Counter,
    /// Rollbacks from explicit `abort()`, drops, or non-constraint errors.
    pub aborted_other: Counter,
    /// Snapshot read transactions begun (`begin_read`): never queue at the
    /// write gate.
    pub read_txns: Counter,
    /// Write transactions begun (`begin`): serialized behind the gate.
    pub write_txns: Counter,
    /// Wall-clock latency of `commit()` (pipeline + weak-coupled actions).
    pub commit_latency: LatencyHisto,
    /// Time spent waiting to acquire the write gate in `begin()`. A read
    /// path that stays off the gate contributes nothing here — asserting
    /// `gate_wait.count` stays flat under read traffic proves it.
    pub gate_wait: LatencyHisto,
    /// `store.release()` failures during rollback. A failed release leaks
    /// the reserved slot until the next reopen reclaims it; the count makes
    /// that leak observable instead of silently swallowed.
    pub release_errors: Counter,
    /// Store-commit attempts retried after a transient (retryable) storage
    /// failure. The WAL rolls a failed group append back to a clean tail,
    /// so the engine can re-issue the identical batch (DESIGN.md §10).
    pub commit_retries: Counter,
    /// Commits rejected by optimistic validation: another transaction
    /// published a conflicting change after this one began (DESIGN.md
    /// §13). These surface as retryable `WriteConflict` errors.
    pub conflicts: Counter,
    /// Extent scans recorded with an analyzer-proven predicate range
    /// instead of a whole-heap entry (DESIGN.md §14). Ranged scans are
    /// eligible for narrowed validation at commit.
    pub ranged_scans: Counter,
    /// Commit validations that passed only because every newer write to a
    /// scanned heap was provably outside the scan's key range — each one
    /// is a false conflict the footprint machinery eliminated.
    pub narrowed_validations: Counter,
    /// Footprint-overlap pressure: raised on each scan/extent conflict,
    /// decayed on each successful claim. The retry loop shifts its
    /// backoff further while this is high, so hot-heap contention drains
    /// instead of thrashing.
    pub conflict_pressure: Gauge,
}

/// Query-execution counters.
#[derive(Debug, Default)]
pub struct QueryTelemetry {
    /// `forall` iterations started.
    pub foralls: Counter,
    /// Join (`forall_join`) queries started.
    pub joins: Counter,
    /// Cluster heaps enumerated by extent scans.
    pub clusters_visited: Counter,
    /// Objects materialized as candidates (scanned or probed).
    pub objects_scanned: Counter,
    /// `suchthat` predicate evaluations.
    pub predicate_evals: Counter,
    /// Index lookups/ranges that answered a conjunct.
    pub index_probes: Counter,
    /// Passes that fell back to enumerating a deep extent.
    pub deep_extent_scans: Counter,
    /// Fixpoint re-evaluation rounds (§3.2).
    pub fixpoint_rounds: Counter,
    /// Newly visited objects across all fixpoint rounds.
    pub fixpoint_new_objects: Counter,
    /// Write-set object states cloned while merging a transaction's
    /// overlay into query results. Extent scans borrow overlay states in
    /// place, so only index probes folding class-matching writes into
    /// their (selectivity-sized) result contribute — this stays near zero
    /// under scan-heavy load, proving scans no longer copy the write set.
    pub overlay_clones: Counter,
}

/// Version-subsystem counters (§4).
#[derive(Debug, Default)]
pub struct VersionTelemetry {
    /// `newversion` / `newversion_from` calls.
    pub newversions: Counter,
    /// Generic references resolved through a version anchor to the current
    /// version's record (a chain follow).
    pub generic_derefs: Counter,
    /// Specific (pinned-version) dereferences.
    pub specific_derefs: Counter,
}

/// Trigger-subsystem counters (§6).
#[derive(Debug, Default)]
pub struct TriggerTelemetry {
    /// Trigger activations requested.
    pub activations: Counter,
    /// Trigger-condition evaluations at commit.
    pub condition_evals: Counter,
    /// Triggers fired (actions dispatched).
    pub firings: Counter,
    /// Fired actions whose own transaction failed (weak coupling records
    /// these instead of propagating).
    pub action_failures: Counter,
    /// Firings deferred past the commit point (weak coupling, §6).
    pub deferred_actions: Counter,
    /// Firings refused because the cascade reached the configured depth
    /// limit (each also counts as an `action_failures`).
    pub cascade_exhausted: Counter,
    /// Deepest trigger cascade observed.
    pub max_cascade_depth: MaxGauge,
}

/// Decoupled-trigger-scheduler counters. Zero everywhere unless a
/// scheduler is attached; then commits enqueue events and the worker pool
/// drains them off the commit path.
#[derive(Debug, Default)]
pub struct SchedTelemetry {
    /// Events durably enqueued by committing transactions.
    pub enqueued: Counter,
    /// Events whose action transaction ran to completion.
    pub drained: Counter,
    /// Action attempts re-queued after a transient failure.
    pub retries: Counter,
    /// Events abandoned to the dead-letter list after exhausting retries
    /// (or failing permanently).
    pub dead_letters: Counter,
    /// Subscription-check jobs dropped because the queue was at capacity
    /// (trigger events are never dropped — they are durable and bounded by
    /// the backlog on disk, not the in-memory queue).
    pub overflow_dropped: Counter,
    /// Jobs currently sitting in the scheduler queue.
    pub queue_depth: Gauge,
    /// Trigger names currently suspended (manual or auto after repeated
    /// failure).
    pub suspended: Gauge,
    /// Most jobs ever queued at once.
    pub queue_high_water: MaxGauge,
    /// Enqueue-to-dispatch latency: how far the drain lags the commits.
    pub drain_lag: LatencyHisto,
}

/// Static-analyzer counters (the `ode-analyze` front-end pass that runs
/// before any transaction is opened).
#[derive(Debug, Default)]
pub struct AnalyzeTelemetry {
    /// Statements (and DDL batches) analyzed.
    pub passes: Counter,
    /// Error-severity diagnostics produced (statements rejected).
    pub errors: Counter,
    /// Warning-severity diagnostics produced (statement still ran).
    pub warnings: Counter,
    /// Wall-clock latency of one analysis pass — the overhead the
    /// front-end adds to each statement, visible in `.stats`.
    pub latency: LatencyHisto,
    /// Statement footprints computed (the abstract-interpretation pass of
    /// DESIGN.md §14).
    pub footprints: Counter,
    /// Statements proven read-only by their footprint: the engine runs
    /// them on the snapshot path, skipping the write-txn machinery.
    pub read_only_proofs: Counter,
}

/// Serving-layer counters (the `ode-server` network front-end). One
/// instance lives in each server; connection and request paths increment
/// it through relaxed atomics, and the `.server` control op snapshots it.
#[derive(Debug, Default)]
pub struct ServerTelemetry {
    /// Connections admitted past the admission semaphore.
    pub accepted: Counter,
    /// Connections refused because the server was at `max_connections`.
    pub rejected_admission: Counter,
    /// Connections refused because the server was draining for shutdown.
    pub rejected_shutdown: Counter,
    /// Connections dropped during the protocol handshake (bad magic,
    /// version mismatch, oversized or malformed first frame).
    pub handshake_failures: Counter,
    /// Requests executed (statements and control ops).
    pub requests: Counter,
    /// Requests answered with an engine error (constraint violation,
    /// parse error, …) — the connection survives these.
    pub engine_errors: Counter,
    /// Requests whose execution exceeded the per-request budget and were
    /// answered with a typed timeout error.
    pub timed_out: Counter,
    /// Wire bytes received (frame headers included).
    pub bytes_in: Counter,
    /// Wire bytes sent (frame headers included).
    pub bytes_out: Counter,
    /// Socket-configuration failures (nodelay, read/write timeouts) that
    /// the connection loop survives but should not silently drop.
    pub socket_errors: Counter,
    /// Wall-clock latency of request execution.
    pub request_latency: LatencyHisto,
    /// Connections currently open.
    pub active_connections: Gauge,
    /// Most connections ever open at once.
    pub max_concurrent: MaxGauge,
    /// Live subscriptions currently registered across all connections.
    pub subscriptions: Gauge,
    /// Push frames written to subscriber connections.
    pub pushes_sent: Counter,
    /// Push frames dropped because a subscriber's outbox was full (slow
    /// consumer) or its connection closed before the drain.
    pub push_dropped: Counter,
    /// Push frames currently buffered in per-connection outboxes.
    pub push_outbox_depth: Gauge,
}

impl ServerTelemetry {
    /// Copy the live counters into a plain-data snapshot.
    pub fn snapshot(&self) -> ServerSnapshot {
        ServerSnapshot {
            accepted: self.accepted.get(),
            rejected_admission: self.rejected_admission.get(),
            rejected_shutdown: self.rejected_shutdown.get(),
            handshake_failures: self.handshake_failures.get(),
            requests: self.requests.get(),
            engine_errors: self.engine_errors.get(),
            timed_out: self.timed_out.get(),
            bytes_in: self.bytes_in.get(),
            bytes_out: self.bytes_out.get(),
            socket_errors: self.socket_errors.get(),
            request_latency: self.request_latency.snapshot(),
            active_connections: self.active_connections.get(),
            max_concurrent: self.max_concurrent.get(),
            subscriptions: self.subscriptions.get(),
            pushes_sent: self.pushes_sent.get(),
            push_dropped: self.push_dropped.get(),
            push_outbox_depth: self.push_outbox_depth.get(),
        }
    }

    /// Zero every server counter.
    pub fn reset(&self) {
        for c in [
            &self.accepted,
            &self.rejected_admission,
            &self.rejected_shutdown,
            &self.handshake_failures,
            &self.requests,
            &self.engine_errors,
            &self.timed_out,
            &self.bytes_in,
            &self.bytes_out,
            &self.socket_errors,
            &self.pushes_sent,
            &self.push_dropped,
        ] {
            c.reset();
        }
        self.request_latency.reset();
        self.max_concurrent.reset();
        // `active_connections`, `subscriptions`, and `push_outbox_depth`
        // are live levels, not statistics: resetting them would
        // desynchronize the counts they mirror.
    }
}

/// Server counters, frozen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerSnapshot {
    /// See [`ServerTelemetry::accepted`].
    pub accepted: u64,
    /// See [`ServerTelemetry::rejected_admission`].
    pub rejected_admission: u64,
    /// See [`ServerTelemetry::rejected_shutdown`].
    pub rejected_shutdown: u64,
    /// See [`ServerTelemetry::handshake_failures`].
    pub handshake_failures: u64,
    /// See [`ServerTelemetry::requests`].
    pub requests: u64,
    /// See [`ServerTelemetry::engine_errors`].
    pub engine_errors: u64,
    /// See [`ServerTelemetry::timed_out`].
    pub timed_out: u64,
    /// See [`ServerTelemetry::bytes_in`].
    pub bytes_in: u64,
    /// See [`ServerTelemetry::bytes_out`].
    pub bytes_out: u64,
    /// See [`ServerTelemetry::socket_errors`].
    pub socket_errors: u64,
    /// See [`ServerTelemetry::request_latency`].
    pub request_latency: HistoSnapshot,
    /// See [`ServerTelemetry::active_connections`].
    pub active_connections: u64,
    /// See [`ServerTelemetry::max_concurrent`].
    pub max_concurrent: u64,
    /// See [`ServerTelemetry::subscriptions`].
    pub subscriptions: u64,
    /// See [`ServerTelemetry::pushes_sent`].
    pub pushes_sent: u64,
    /// See [`ServerTelemetry::push_dropped`].
    pub push_dropped: u64,
    /// See [`ServerTelemetry::push_outbox_depth`].
    pub push_outbox_depth: u64,
}

impl ServerSnapshot {
    /// Field-wise `self - baseline` (saturating); levels
    /// (`active_connections`, `max_concurrent`, quantiles) keep their
    /// current values.
    pub fn delta(&self, baseline: &ServerSnapshot) -> ServerSnapshot {
        ServerSnapshot {
            accepted: self.accepted.saturating_sub(baseline.accepted),
            rejected_admission: self
                .rejected_admission
                .saturating_sub(baseline.rejected_admission),
            rejected_shutdown: self
                .rejected_shutdown
                .saturating_sub(baseline.rejected_shutdown),
            handshake_failures: self
                .handshake_failures
                .saturating_sub(baseline.handshake_failures),
            requests: self.requests.saturating_sub(baseline.requests),
            engine_errors: self.engine_errors.saturating_sub(baseline.engine_errors),
            timed_out: self.timed_out.saturating_sub(baseline.timed_out),
            bytes_in: self.bytes_in.saturating_sub(baseline.bytes_in),
            bytes_out: self.bytes_out.saturating_sub(baseline.bytes_out),
            socket_errors: self.socket_errors.saturating_sub(baseline.socket_errors),
            request_latency: self.request_latency.delta(&baseline.request_latency),
            pushes_sent: self.pushes_sent.saturating_sub(baseline.pushes_sent),
            push_dropped: self.push_dropped.saturating_sub(baseline.push_dropped),
            ..*self
        }
    }

    /// Flat `(dotted-name, value)` rows for line-oriented display (the
    /// shell's `.server` over the wire).
    pub fn rows(&self) -> Vec<(String, String)> {
        let mut out = Vec::with_capacity(16);
        let mut push = |name: &str, v: u64| out.push((name.to_string(), v.to_string()));
        push("server.accepted", self.accepted);
        push("server.rejected_admission", self.rejected_admission);
        push("server.rejected_shutdown", self.rejected_shutdown);
        push("server.handshake_failures", self.handshake_failures);
        push("server.requests", self.requests);
        push("server.engine_errors", self.engine_errors);
        push("server.timed_out", self.timed_out);
        push("server.bytes_in", self.bytes_in);
        push("server.bytes_out", self.bytes_out);
        push("server.socket_errors", self.socket_errors);
        push("server.active_connections", self.active_connections);
        push("server.max_concurrent", self.max_concurrent);
        push("server.subscriptions", self.subscriptions);
        push("server.pushes_sent", self.pushes_sent);
        push("server.push_dropped", self.push_dropped);
        push("server.push_outbox_depth", self.push_outbox_depth);
        push("server.request_latency.count", self.request_latency.count);
        out.push((
            "server.request_latency.mean_us".to_string(),
            format!("{:.1}", self.request_latency.mean_ns() as f64 / 1e3),
        ));
        out.push((
            "server.request_latency.p99_us".to_string(),
            format!("{:.1}", self.request_latency.p99_ns as f64 / 1e3),
        ));
        out
    }

    /// Serialize as a stable JSON object (dependency-free, like
    /// [`TelemetrySnapshot::to_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\"accepted\":{},\"rejected_admission\":{},\
             \"rejected_shutdown\":{},\"handshake_failures\":{},\
             \"requests\":{},\"engine_errors\":{},\"timed_out\":{},\
             \"bytes_in\":{},\"bytes_out\":{},\"socket_errors\":{},\
             \"active_connections\":{},\
             \"max_concurrent\":{},\"subscriptions\":{},\
             \"pushes_sent\":{},\"push_dropped\":{},\
             \"push_outbox_depth\":{},\"request_latency\":",
            self.accepted,
            self.rejected_admission,
            self.rejected_shutdown,
            self.handshake_failures,
            self.requests,
            self.engine_errors,
            self.timed_out,
            self.bytes_in,
            self.bytes_out,
            self.socket_errors,
            self.active_connections,
            self.max_concurrent,
            self.subscriptions,
            self.pushes_sent,
            self.push_dropped,
            self.push_outbox_depth
        ));
        self.request_latency.json(&mut out);
        out.push('}');
        out
    }
}

/// The engine's live counter tree. One instance lives in each `Database`;
/// every layer increments it through relaxed atomics.
#[derive(Debug, Default)]
pub struct EngineTelemetry {
    /// Transaction counters.
    pub txn: TxnTelemetry,
    /// Query-execution counters.
    pub query: QueryTelemetry,
    /// Version counters.
    pub versions: VersionTelemetry,
    /// Trigger counters.
    pub triggers: TriggerTelemetry,
    /// Decoupled-scheduler counters.
    pub sched: SchedTelemetry,
    /// Static-analyzer counters.
    pub analyze: AnalyzeTelemetry,
}

impl EngineTelemetry {
    /// Zero every engine counter (substrate counters reset separately).
    pub fn reset(&self) {
        let t = &self.txn;
        for c in [
            &t.begun,
            &t.committed,
            &t.aborted_constraint,
            &t.aborted_other,
            &t.read_txns,
            &t.write_txns,
            &t.release_errors,
            &t.commit_retries,
            &t.conflicts,
            &t.ranged_scans,
            &t.narrowed_validations,
        ] {
            c.reset();
        }
        // `conflict_pressure` is a live level fed back into retry backoff;
        // zeroing it would erase real contention state.
        t.commit_latency.reset();
        t.gate_wait.reset();
        let q = &self.query;
        for c in [
            &q.foralls,
            &q.joins,
            &q.clusters_visited,
            &q.objects_scanned,
            &q.predicate_evals,
            &q.index_probes,
            &q.deep_extent_scans,
            &q.fixpoint_rounds,
            &q.fixpoint_new_objects,
            &q.overlay_clones,
        ] {
            c.reset();
        }
        let v = &self.versions;
        for c in [&v.newversions, &v.generic_derefs, &v.specific_derefs] {
            c.reset();
        }
        let g = &self.triggers;
        for c in [
            &g.activations,
            &g.condition_evals,
            &g.firings,
            &g.action_failures,
            &g.deferred_actions,
            &g.cascade_exhausted,
        ] {
            c.reset();
        }
        g.max_cascade_depth.reset();
        let sc = &self.sched;
        for c in [
            &sc.enqueued,
            &sc.drained,
            &sc.retries,
            &sc.dead_letters,
            &sc.overflow_dropped,
        ] {
            c.reset();
        }
        // Queue depth and suspensions are live levels that mirror
        // scheduler state; zeroing them would desynchronize the mirror.
        sc.queue_high_water.reset();
        sc.drain_lag.reset();
        let a = &self.analyze;
        for c in [
            &a.passes,
            &a.errors,
            &a.warnings,
            &a.footprints,
            &a.read_only_proofs,
        ] {
            c.reset();
        }
        a.latency.reset();
    }

    /// Copy the live counters (plus the given substrate counters) into a
    /// plain-data snapshot.
    pub fn snapshot(&self, storage: StorageSnapshot) -> TelemetrySnapshot {
        TelemetrySnapshot {
            storage,
            txn: TxnSnapshot {
                begun: self.txn.begun.get(),
                committed: self.txn.committed.get(),
                aborted_constraint: self.txn.aborted_constraint.get(),
                aborted_other: self.txn.aborted_other.get(),
                read_txns: self.txn.read_txns.get(),
                write_txns: self.txn.write_txns.get(),
                commit_latency: self.txn.commit_latency.snapshot(),
                gate_wait: self.txn.gate_wait.snapshot(),
                release_errors: self.txn.release_errors.get(),
                commit_retries: self.txn.commit_retries.get(),
                conflicts: self.txn.conflicts.get(),
                ranged_scans: self.txn.ranged_scans.get(),
                narrowed_validations: self.txn.narrowed_validations.get(),
                conflict_pressure: self.txn.conflict_pressure.get(),
            },
            query: QuerySnapshot {
                foralls: self.query.foralls.get(),
                joins: self.query.joins.get(),
                clusters_visited: self.query.clusters_visited.get(),
                objects_scanned: self.query.objects_scanned.get(),
                predicate_evals: self.query.predicate_evals.get(),
                index_probes: self.query.index_probes.get(),
                deep_extent_scans: self.query.deep_extent_scans.get(),
                fixpoint_rounds: self.query.fixpoint_rounds.get(),
                fixpoint_new_objects: self.query.fixpoint_new_objects.get(),
                overlay_clones: self.query.overlay_clones.get(),
            },
            versions: VersionSnapshot {
                newversions: self.versions.newversions.get(),
                generic_derefs: self.versions.generic_derefs.get(),
                specific_derefs: self.versions.specific_derefs.get(),
            },
            triggers: TriggerSnapshot {
                activations: self.triggers.activations.get(),
                condition_evals: self.triggers.condition_evals.get(),
                firings: self.triggers.firings.get(),
                action_failures: self.triggers.action_failures.get(),
                deferred_actions: self.triggers.deferred_actions.get(),
                cascade_exhausted: self.triggers.cascade_exhausted.get(),
                max_cascade_depth: self.triggers.max_cascade_depth.get(),
            },
            sched: SchedSnapshot {
                enqueued: self.sched.enqueued.get(),
                drained: self.sched.drained.get(),
                retries: self.sched.retries.get(),
                dead_letters: self.sched.dead_letters.get(),
                overflow_dropped: self.sched.overflow_dropped.get(),
                queue_depth: self.sched.queue_depth.get(),
                suspended: self.sched.suspended.get(),
                queue_high_water: self.sched.queue_high_water.get(),
                drain_lag: self.sched.drain_lag.snapshot(),
            },
            analyze: AnalyzeSnapshot {
                passes: self.analyze.passes.get(),
                errors: self.analyze.errors.get(),
                warnings: self.analyze.warnings.get(),
                latency: self.analyze.latency.snapshot(),
                footprints: self.analyze.footprints.get(),
                read_only_proofs: self.analyze.read_only_proofs.get(),
            },
        }
    }
}

// ------------------------------------------------------------ snapshots

/// Substrate (storage-layer) counters, flattened for snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageSnapshot {
    /// Buffer-pool page requests served from the pool.
    pub pager_hits: u64,
    /// Page requests that read the data file.
    pub pager_misses: u64,
    /// Frames evicted to make room.
    pub pager_evictions: u64,
    /// Dirty frames written back.
    pub pager_writebacks: u64,
    /// Record reads served by the store.
    pub record_reads: u64,
    /// Records written by commit batches.
    pub record_writes: u64,
    /// WAL commit groups appended.
    pub wal_appends: u64,
    /// WAL fsyncs issued.
    pub wal_fsyncs: u64,
    /// Bytes in the WAL since the last checkpoint.
    pub wal_bytes: u64,
    /// Committed store batches since open.
    pub commits: u64,
    /// WAL commit groups replayed during recovery at the last open.
    pub replayed_groups: u64,
    /// Faults injected by a fault-injection wrapper (zero in production;
    /// nonzero only under the crash-torture harness, DESIGN.md §10).
    pub faults_injected: u64,
    /// Checkpoint attempts that failed (including the best-effort one in
    /// `Drop`); each leaves the WAL intact, so durability is unharmed.
    pub checkpoint_failures: u64,
    /// Group-commit fsync cohorts: shared durability phases led by one
    /// committer on behalf of everyone queued behind it (DESIGN.md §13).
    pub commit_groups: u64,
    /// Total commits that rode those cohorts; `commit_group_members /
    /// commit_groups` is the mean cohort size (1.0 = no sharing).
    pub commit_group_members: u64,
}

/// Transaction counters, frozen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnSnapshot {
    /// See [`TxnTelemetry::begun`].
    pub begun: u64,
    /// See [`TxnTelemetry::committed`].
    pub committed: u64,
    /// See [`TxnTelemetry::aborted_constraint`].
    pub aborted_constraint: u64,
    /// See [`TxnTelemetry::aborted_other`].
    pub aborted_other: u64,
    /// See [`TxnTelemetry::read_txns`].
    pub read_txns: u64,
    /// See [`TxnTelemetry::write_txns`].
    pub write_txns: u64,
    /// See [`TxnTelemetry::commit_latency`].
    pub commit_latency: HistoSnapshot,
    /// See [`TxnTelemetry::gate_wait`].
    pub gate_wait: HistoSnapshot,
    /// See [`TxnTelemetry::release_errors`].
    pub release_errors: u64,
    /// See [`TxnTelemetry::commit_retries`].
    pub commit_retries: u64,
    /// See [`TxnTelemetry::conflicts`].
    pub conflicts: u64,
    /// See [`TxnTelemetry::ranged_scans`].
    pub ranged_scans: u64,
    /// See [`TxnTelemetry::narrowed_validations`].
    pub narrowed_validations: u64,
    /// See [`TxnTelemetry::conflict_pressure`].
    pub conflict_pressure: u64,
}

/// Query counters, frozen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuerySnapshot {
    /// See [`QueryTelemetry::foralls`].
    pub foralls: u64,
    /// See [`QueryTelemetry::joins`].
    pub joins: u64,
    /// See [`QueryTelemetry::clusters_visited`].
    pub clusters_visited: u64,
    /// See [`QueryTelemetry::objects_scanned`].
    pub objects_scanned: u64,
    /// See [`QueryTelemetry::predicate_evals`].
    pub predicate_evals: u64,
    /// See [`QueryTelemetry::index_probes`].
    pub index_probes: u64,
    /// See [`QueryTelemetry::deep_extent_scans`].
    pub deep_extent_scans: u64,
    /// See [`QueryTelemetry::fixpoint_rounds`].
    pub fixpoint_rounds: u64,
    /// See [`QueryTelemetry::fixpoint_new_objects`].
    pub fixpoint_new_objects: u64,
    /// See [`QueryTelemetry::overlay_clones`].
    pub overlay_clones: u64,
}

/// Version counters, frozen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VersionSnapshot {
    /// See [`VersionTelemetry::newversions`].
    pub newversions: u64,
    /// See [`VersionTelemetry::generic_derefs`].
    pub generic_derefs: u64,
    /// See [`VersionTelemetry::specific_derefs`].
    pub specific_derefs: u64,
}

/// Trigger counters, frozen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TriggerSnapshot {
    /// See [`TriggerTelemetry::activations`].
    pub activations: u64,
    /// See [`TriggerTelemetry::condition_evals`].
    pub condition_evals: u64,
    /// See [`TriggerTelemetry::firings`].
    pub firings: u64,
    /// See [`TriggerTelemetry::action_failures`].
    pub action_failures: u64,
    /// See [`TriggerTelemetry::deferred_actions`].
    pub deferred_actions: u64,
    /// See [`TriggerTelemetry::cascade_exhausted`].
    pub cascade_exhausted: u64,
    /// See [`TriggerTelemetry::max_cascade_depth`].
    pub max_cascade_depth: u64,
}

/// Scheduler counters, frozen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedSnapshot {
    /// See [`SchedTelemetry::enqueued`].
    pub enqueued: u64,
    /// See [`SchedTelemetry::drained`].
    pub drained: u64,
    /// See [`SchedTelemetry::retries`].
    pub retries: u64,
    /// See [`SchedTelemetry::dead_letters`].
    pub dead_letters: u64,
    /// See [`SchedTelemetry::overflow_dropped`].
    pub overflow_dropped: u64,
    /// See [`SchedTelemetry::queue_depth`].
    pub queue_depth: u64,
    /// See [`SchedTelemetry::suspended`].
    pub suspended: u64,
    /// See [`SchedTelemetry::queue_high_water`].
    pub queue_high_water: u64,
    /// See [`SchedTelemetry::drain_lag`].
    pub drain_lag: HistoSnapshot,
}

/// Static-analyzer counters, frozen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalyzeSnapshot {
    /// See [`AnalyzeTelemetry::passes`].
    pub passes: u64,
    /// See [`AnalyzeTelemetry::errors`].
    pub errors: u64,
    /// See [`AnalyzeTelemetry::warnings`].
    pub warnings: u64,
    /// See [`AnalyzeTelemetry::latency`].
    pub latency: HistoSnapshot,
    /// See [`AnalyzeTelemetry::footprints`].
    pub footprints: u64,
    /// See [`AnalyzeTelemetry::read_only_proofs`].
    pub read_only_proofs: u64,
}

/// A full engine + substrate telemetry snapshot: plain data, comparable,
/// subtractable, and serializable to JSON without any dependency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Storage-layer counters.
    pub storage: StorageSnapshot,
    /// Transaction counters.
    pub txn: TxnSnapshot,
    /// Query counters.
    pub query: QuerySnapshot,
    /// Version counters.
    pub versions: VersionSnapshot,
    /// Trigger counters.
    pub triggers: TriggerSnapshot,
    /// Decoupled-scheduler counters.
    pub sched: SchedSnapshot,
    /// Static-analyzer counters.
    pub analyze: AnalyzeSnapshot,
}

macro_rules! sub_fields {
    ($self:expr, $base:expr; $($field:ident),+ $(,)?) => {
        ($( $self.$field.saturating_sub($base.$field), )+)
    };
}

impl TelemetrySnapshot {
    /// Field-wise `self - baseline` (saturating). Gauges
    /// (`max_cascade_depth`, `wal_bytes`, quantiles) keep their current
    /// values: they are levels, not counts.
    pub fn delta(&self, baseline: &TelemetrySnapshot) -> TelemetrySnapshot {
        let s = &self.storage;
        let b = &baseline.storage;
        let (
            pager_hits,
            pager_misses,
            pager_evictions,
            pager_writebacks,
            record_reads,
            record_writes,
            wal_appends,
            wal_fsyncs,
            commits,
            faults_injected,
            checkpoint_failures,
            commit_groups,
            commit_group_members,
        ) = sub_fields!(s, b; pager_hits, pager_misses, pager_evictions,
            pager_writebacks, record_reads, record_writes, wal_appends,
            wal_fsyncs, commits, faults_injected, checkpoint_failures,
            commit_groups, commit_group_members);
        let storage = StorageSnapshot {
            pager_hits,
            pager_misses,
            pager_evictions,
            pager_writebacks,
            record_reads,
            record_writes,
            wal_appends,
            wal_fsyncs,
            wal_bytes: s.wal_bytes,
            commits,
            // A level, not a count: recovery work from the last reopen.
            replayed_groups: s.replayed_groups,
            faults_injected,
            checkpoint_failures,
            commit_groups,
            commit_group_members,
        };
        let t = &self.txn;
        let bt = &baseline.txn;
        let (
            begun,
            committed,
            aborted_constraint,
            aborted_other,
            read_txns,
            write_txns,
            release_errors,
            commit_retries,
            conflicts,
            ranged_scans,
            narrowed_validations,
        ) = sub_fields!(t, bt; begun, committed, aborted_constraint, aborted_other,
                read_txns, write_txns, release_errors, commit_retries, conflicts,
                ranged_scans, narrowed_validations);
        let txn = TxnSnapshot {
            begun,
            committed,
            aborted_constraint,
            aborted_other,
            read_txns,
            write_txns,
            commit_latency: t.commit_latency.delta(&bt.commit_latency),
            gate_wait: t.gate_wait.delta(&bt.gate_wait),
            release_errors,
            commit_retries,
            conflicts,
            ranged_scans,
            narrowed_validations,
            // A level fed into backoff, not a count.
            conflict_pressure: t.conflict_pressure,
        };
        let q = &self.query;
        let bq = &baseline.query;
        let (
            foralls,
            joins,
            clusters_visited,
            objects_scanned,
            predicate_evals,
            index_probes,
            deep_extent_scans,
            fixpoint_rounds,
            fixpoint_new_objects,
            overlay_clones,
        ) = sub_fields!(q, bq; foralls, joins, clusters_visited,
            objects_scanned, predicate_evals, index_probes,
            deep_extent_scans, fixpoint_rounds, fixpoint_new_objects,
            overlay_clones);
        let query = QuerySnapshot {
            foralls,
            joins,
            clusters_visited,
            objects_scanned,
            predicate_evals,
            index_probes,
            deep_extent_scans,
            fixpoint_rounds,
            fixpoint_new_objects,
            overlay_clones,
        };
        let v = &self.versions;
        let bv = &baseline.versions;
        let (newversions, generic_derefs, specific_derefs) =
            sub_fields!(v, bv; newversions, generic_derefs, specific_derefs);
        let versions = VersionSnapshot {
            newversions,
            generic_derefs,
            specific_derefs,
        };
        let g = &self.triggers;
        let bg = &baseline.triggers;
        let (
            activations,
            condition_evals,
            firings,
            action_failures,
            deferred_actions,
            cascade_exhausted,
        ) = sub_fields!(g, bg; activations, condition_evals, firings,
                action_failures, deferred_actions, cascade_exhausted);
        let triggers = TriggerSnapshot {
            activations,
            condition_evals,
            firings,
            action_failures,
            deferred_actions,
            cascade_exhausted,
            max_cascade_depth: g.max_cascade_depth,
        };
        let sc = &self.sched;
        let bsc = &baseline.sched;
        let (enqueued, drained, retries, dead_letters, overflow_dropped) =
            sub_fields!(sc, bsc; enqueued, drained, retries, dead_letters, overflow_dropped);
        let sched = SchedSnapshot {
            enqueued,
            drained,
            retries,
            dead_letters,
            overflow_dropped,
            // Levels, not counts.
            queue_depth: sc.queue_depth,
            suspended: sc.suspended,
            queue_high_water: sc.queue_high_water,
            drain_lag: sc.drain_lag.delta(&bsc.drain_lag),
        };
        let a = &self.analyze;
        let ba = &baseline.analyze;
        let (passes, errors, warnings, footprints, read_only_proofs) =
            sub_fields!(a, ba; passes, errors, warnings, footprints, read_only_proofs);
        let analyze = AnalyzeSnapshot {
            passes,
            errors,
            warnings,
            latency: a.latency.delta(&ba.latency),
            footprints,
            read_only_proofs,
        };
        TelemetrySnapshot {
            storage,
            txn,
            query,
            versions,
            triggers,
            sched,
            analyze,
        }
    }

    /// Flat `(dotted-name, value)` rows for line-oriented display (the
    /// shell's `.stats`). Latency values are rendered in microseconds.
    pub fn rows(&self) -> Vec<(String, String)> {
        let mut out = Vec::with_capacity(40);
        let mut push = |name: &str, v: u64| out.push((name.to_string(), v.to_string()));
        let s = &self.storage;
        push("storage.pager_hits", s.pager_hits);
        push("storage.pager_misses", s.pager_misses);
        push("storage.pager_evictions", s.pager_evictions);
        push("storage.pager_writebacks", s.pager_writebacks);
        push("storage.record_reads", s.record_reads);
        push("storage.record_writes", s.record_writes);
        push("storage.wal_appends", s.wal_appends);
        push("storage.wal_fsyncs", s.wal_fsyncs);
        push("storage.wal_bytes", s.wal_bytes);
        push("storage.commits", s.commits);
        push("storage.faults_injected", s.faults_injected);
        push("storage.checkpoint_failures", s.checkpoint_failures);
        push("storage.commit_groups", s.commit_groups);
        push("storage.commit_group_members", s.commit_group_members);
        push("recovery.replayed_groups", s.replayed_groups);
        let t = &self.txn;
        push("txn.begun", t.begun);
        push("txn.committed", t.committed);
        push("txn.aborted_constraint", t.aborted_constraint);
        push("txn.aborted_other", t.aborted_other);
        push("txn.read_txns", t.read_txns);
        push("txn.write_txns", t.write_txns);
        push("txn.release_errors", t.release_errors);
        push("commit.retries", t.commit_retries);
        push("txn.conflicts", t.conflicts);
        push("txn.ranged_scans", t.ranged_scans);
        push("txn.narrowed_validations", t.narrowed_validations);
        push("txn.conflict_pressure", t.conflict_pressure);
        push("txn.commit_latency.count", t.commit_latency.count);
        let q = &self.query;
        let lat = &self.txn.commit_latency;
        out.push((
            "txn.commit_latency.mean_us".to_string(),
            format!("{:.1}", lat.mean_ns() as f64 / 1e3),
        ));
        out.push((
            "txn.commit_latency.p99_us".to_string(),
            format!("{:.1}", lat.p99_ns as f64 / 1e3),
        ));
        let gate = &self.txn.gate_wait;
        out.push(("txn.gate_wait.count".to_string(), gate.count.to_string()));
        out.push((
            "txn.gate_wait.mean_us".to_string(),
            format!("{:.1}", gate.mean_ns() as f64 / 1e3),
        ));
        out.push((
            "txn.gate_wait.p99_us".to_string(),
            format!("{:.1}", gate.p99_ns as f64 / 1e3),
        ));
        let mut push = |name: &str, v: u64| out.push((name.to_string(), v.to_string()));
        push("query.foralls", q.foralls);
        push("query.joins", q.joins);
        push("query.clusters_visited", q.clusters_visited);
        push("query.objects_scanned", q.objects_scanned);
        push("query.predicate_evals", q.predicate_evals);
        push("query.index_probes", q.index_probes);
        push("query.deep_extent_scans", q.deep_extent_scans);
        push("query.fixpoint_rounds", q.fixpoint_rounds);
        push("query.fixpoint_new_objects", q.fixpoint_new_objects);
        push("query.overlay_clones", q.overlay_clones);
        let v = &self.versions;
        push("versions.newversions", v.newversions);
        push("versions.generic_derefs", v.generic_derefs);
        push("versions.specific_derefs", v.specific_derefs);
        let g = &self.triggers;
        push("triggers.activations", g.activations);
        push("triggers.condition_evals", g.condition_evals);
        push("triggers.firings", g.firings);
        push("triggers.action_failures", g.action_failures);
        push("triggers.deferred_actions", g.deferred_actions);
        push("triggers.cascade_exhausted", g.cascade_exhausted);
        push("triggers.max_cascade_depth", g.max_cascade_depth);
        let sc = &self.sched;
        push("sched.enqueued", sc.enqueued);
        push("sched.drained", sc.drained);
        push("sched.retries", sc.retries);
        push("sched.dead_letters", sc.dead_letters);
        push("sched.overflow_dropped", sc.overflow_dropped);
        push("sched.queue_depth", sc.queue_depth);
        push("sched.suspended", sc.suspended);
        push("sched.queue_high_water", sc.queue_high_water);
        push("sched.drain_lag.count", sc.drain_lag.count);
        out.push((
            "sched.drain_lag.mean_us".to_string(),
            format!("{:.1}", sc.drain_lag.mean_ns() as f64 / 1e3),
        ));
        out.push((
            "sched.drain_lag.p99_us".to_string(),
            format!("{:.1}", sc.drain_lag.p99_ns as f64 / 1e3),
        ));
        let mut push = |name: &str, v: u64| out.push((name.to_string(), v.to_string()));
        let a = &self.analyze;
        push("analyze.passes", a.passes);
        push("analyze.errors", a.errors);
        push("analyze.warnings", a.warnings);
        push("analyze.footprints", a.footprints);
        push("analyze.read_only_proofs", a.read_only_proofs);
        push("analyze.latency.count", a.latency.count);
        out.push((
            "analyze.latency.mean_us".to_string(),
            format!("{:.1}", a.latency.mean_ns() as f64 / 1e3),
        ));
        out.push((
            "analyze.latency.p99_us".to_string(),
            format!("{:.1}", a.latency.p99_ns as f64 / 1e3),
        ));
        out
    }

    /// Serialize as a stable JSON object (no external dependency; every
    /// value is an unsigned integer or a nested object).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        let s = &self.storage;
        out.push_str(&format!(
            "\"storage\":{{\"pager_hits\":{},\"pager_misses\":{},\
             \"pager_evictions\":{},\"pager_writebacks\":{},\
             \"record_reads\":{},\"record_writes\":{},\"wal_appends\":{},\
             \"wal_fsyncs\":{},\"wal_bytes\":{},\"commits\":{},\
             \"replayed_groups\":{},\"faults_injected\":{},\
             \"checkpoint_failures\":{},\"commit_groups\":{},\
             \"commit_group_members\":{}}},",
            s.pager_hits,
            s.pager_misses,
            s.pager_evictions,
            s.pager_writebacks,
            s.record_reads,
            s.record_writes,
            s.wal_appends,
            s.wal_fsyncs,
            s.wal_bytes,
            s.commits,
            s.replayed_groups,
            s.faults_injected,
            s.checkpoint_failures,
            s.commit_groups,
            s.commit_group_members
        ));
        let t = &self.txn;
        out.push_str(&format!(
            "\"txn\":{{\"begun\":{},\"committed\":{},\
             \"aborted_constraint\":{},\"aborted_other\":{},\
             \"read_txns\":{},\"write_txns\":{},\
             \"release_errors\":{},\"commit_retries\":{},\
             \"conflicts\":{},\"ranged_scans\":{},\
             \"narrowed_validations\":{},\"conflict_pressure\":{},\
             \"commit_latency\":",
            t.begun,
            t.committed,
            t.aborted_constraint,
            t.aborted_other,
            t.read_txns,
            t.write_txns,
            t.release_errors,
            t.commit_retries,
            t.conflicts,
            t.ranged_scans,
            t.narrowed_validations,
            t.conflict_pressure
        ));
        t.commit_latency.json(&mut out);
        out.push_str(",\"gate_wait\":");
        t.gate_wait.json(&mut out);
        out.push_str("},");
        let q = &self.query;
        out.push_str(&format!(
            "\"query\":{{\"foralls\":{},\"joins\":{},\"clusters_visited\":{},\
             \"objects_scanned\":{},\"predicate_evals\":{},\
             \"index_probes\":{},\"deep_extent_scans\":{},\
             \"fixpoint_rounds\":{},\"fixpoint_new_objects\":{},\
             \"overlay_clones\":{}}},",
            q.foralls,
            q.joins,
            q.clusters_visited,
            q.objects_scanned,
            q.predicate_evals,
            q.index_probes,
            q.deep_extent_scans,
            q.fixpoint_rounds,
            q.fixpoint_new_objects,
            q.overlay_clones
        ));
        let v = &self.versions;
        out.push_str(&format!(
            "\"versions\":{{\"newversions\":{},\"generic_derefs\":{},\
             \"specific_derefs\":{}}},",
            v.newversions, v.generic_derefs, v.specific_derefs
        ));
        let g = &self.triggers;
        out.push_str(&format!(
            "\"triggers\":{{\"activations\":{},\"condition_evals\":{},\
             \"firings\":{},\"action_failures\":{},\"deferred_actions\":{},\
             \"cascade_exhausted\":{},\"max_cascade_depth\":{}}}",
            g.activations,
            g.condition_evals,
            g.firings,
            g.action_failures,
            g.deferred_actions,
            g.cascade_exhausted,
            g.max_cascade_depth
        ));
        let sc = &self.sched;
        out.push_str(&format!(
            ",\"sched\":{{\"enqueued\":{},\"drained\":{},\"retries\":{},\
             \"dead_letters\":{},\"overflow_dropped\":{},\
             \"queue_depth\":{},\"suspended\":{},\
             \"queue_high_water\":{},\"drain_lag\":",
            sc.enqueued,
            sc.drained,
            sc.retries,
            sc.dead_letters,
            sc.overflow_dropped,
            sc.queue_depth,
            sc.suspended,
            sc.queue_high_water
        ));
        sc.drain_lag.json(&mut out);
        out.push('}');
        let a = &self.analyze;
        out.push_str(&format!(
            ",\"analyze\":{{\"passes\":{},\"errors\":{},\"warnings\":{},\
             \"footprints\":{},\"read_only_proofs\":{},\"latency\":",
            a.passes, a.errors, a.warnings, a.footprints, a.read_only_proofs
        ));
        a.latency.json(&mut out);
        out.push('}');
        out.push('}');
        out
    }
}

// -------------------------------------------------------- query profile

/// How a query's candidate set was produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum PlanStrategy {
    /// Enumerate the class's deep extent (cluster hierarchy scan).
    #[default]
    DeepExtentScan,
    /// Enumerate the exact class's extent only (`only` / shallow).
    ShallowExtentScan,
    /// Answer an indexed conjunct from the B-tree on `field`, then
    /// re-check the full predicate.
    IndexProbe {
        /// The indexed field backing the probe.
        field: String,
    },
    /// Nested-loop join (inner variables may still probe indexes; see
    /// [`QueryProfile::index_probes`]).
    NestedLoopJoin,
}

impl std::fmt::Display for PlanStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanStrategy::DeepExtentScan => write!(f, "deep extent scan"),
            PlanStrategy::ShallowExtentScan => write!(f, "shallow extent scan"),
            PlanStrategy::IndexProbe { field } => write!(f, "index probe on `{field}`"),
            PlanStrategy::NestedLoopJoin => write!(f, "nested-loop join"),
        }
    }
}

/// Execution profile of one query pass — the payload behind
/// `explain forall …` and the source of the global query counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryProfile {
    /// Iterated class (or comma-joined classes for a join).
    pub target: String,
    /// Chosen access path.
    pub strategy: PlanStrategy,
    /// Cluster heaps enumerated.
    pub clusters_visited: u64,
    /// Objects materialized as candidates before predicate filtering.
    pub objects_scanned: u64,
    /// `suchthat` evaluations performed.
    pub predicate_evals: u64,
    /// Index lookups/range scans performed.
    pub index_probes: u64,
    /// Bindings produced.
    pub rows: u64,
    /// Fixpoint rounds executed (0 for snapshot queries).
    pub fixpoint_rounds: u64,
    /// Newly visited objects per fixpoint round.
    pub fixpoint_new_by_round: Vec<u64>,
}

impl QueryProfile {
    /// Merge another pass into this profile (fixpoint rounds accumulate
    /// passes; the strategy of the first pass wins).
    pub fn absorb(&mut self, other: &QueryProfile) {
        if self.target.is_empty() {
            self.target = other.target.clone();
            self.strategy = other.strategy.clone();
        }
        self.clusters_visited += other.clusters_visited;
        self.objects_scanned += other.objects_scanned;
        self.predicate_evals += other.predicate_evals;
        self.index_probes += other.index_probes;
        self.rows = other.rows;
        self.fixpoint_rounds += other.fixpoint_rounds;
        self.fixpoint_new_by_round
            .extend_from_slice(&other.fixpoint_new_by_round);
    }

    /// `(column, value)` rows for tabular display (`explain` output).
    pub fn rows(&self) -> Vec<(String, String)> {
        let mut out = vec![
            ("target".to_string(), self.target.clone()),
            ("strategy".to_string(), self.strategy.to_string()),
            (
                "clusters_visited".to_string(),
                self.clusters_visited.to_string(),
            ),
            (
                "objects_scanned".to_string(),
                self.objects_scanned.to_string(),
            ),
            (
                "predicate_evals".to_string(),
                self.predicate_evals.to_string(),
            ),
            ("index_probes".to_string(), self.index_probes.to_string()),
            ("rows".to_string(), self.rows.to_string()),
        ];
        if self.fixpoint_rounds > 0 {
            out.push((
                "fixpoint_rounds".to_string(),
                self.fixpoint_rounds.to_string(),
            ));
            out.push((
                "fixpoint_new_by_round".to_string(),
                format!("{:?}", self.fixpoint_new_by_round),
            ));
        }
        out
    }
}

// ---------------------------------------------------------------- trace

/// Which engine scope a trace span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceScope {
    /// A transaction's lifetime (begin → commit/abort).
    Transaction,
    /// One query planning + candidate pass.
    Query,
    /// One trigger firing (weak-coupled action transaction).
    Trigger,
}

/// Span boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// The scope opened.
    Begin,
    /// The scope closed.
    End,
}

/// One span event delivered to a [`TraceSink`].
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Scope kind.
    pub scope: TraceScope,
    /// Begin or end.
    pub phase: TracePhase,
    /// Scope-local serial (transaction serial, query serial, activation
    /// id) pairing each Begin with its End.
    pub id: u64,
    /// Human-oriented detail: outcome for transactions (`commit`,
    /// `abort:constraint`…), class for queries, trigger name for triggers.
    pub detail: String,
}

/// Host callback receiving trace events. Mirrors the engine's `CallbackFn`
/// shape; installed per-database, invoked synchronously on the engine
/// thread, so sinks must be cheap and must not call back into the engine.
pub type TraceSink = Arc<dyn Fn(&TraceEvent) + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
        let g = MaxGauge::new();
        g.observe(3);
        g.observe(1);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHisto::new();
        for _ in 0..99 {
            h.record_ns(1_000); // bucket ~2^10
        }
        h.record_ns(1_000_000); // one slow outlier
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert!(s.p50_ns <= 2_048, "p50 {}", s.p50_ns);
        assert!(s.p99_ns <= 2_048, "p99 covers the fast mass: {}", s.p99_ns);
        assert!(s.max_ns >= 1_000_000, "max {}", s.max_ns);
        assert!(s.mean_ns() >= 1_000);
    }

    #[test]
    fn snapshot_delta_subtracts_counts() {
        let tel = EngineTelemetry::default();
        tel.txn.begun.add(3);
        tel.query.objects_scanned.add(10);
        let before = tel.snapshot(StorageSnapshot::default());
        tel.txn.begun.add(2);
        tel.query.objects_scanned.add(5);
        let after = tel.snapshot(StorageSnapshot {
            pager_hits: 7,
            ..StorageSnapshot::default()
        });
        let d = after.delta(&before);
        assert_eq!(d.txn.begun, 2);
        assert_eq!(d.query.objects_scanned, 5);
        assert_eq!(d.storage.pager_hits, 7);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let snap = EngineTelemetry::default().snapshot(StorageSnapshot::default());
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"storage\":",
            "\"txn\":",
            "\"query\":",
            "\"versions\":",
            "\"triggers\":",
            "\"sched\":",
            "\"analyze\":",
        ] {
            assert!(json.contains(key), "{json}");
        }
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn profile_rows_show_strategy() {
        let prof = QueryProfile {
            target: "stockitem".into(),
            strategy: PlanStrategy::IndexProbe {
                field: "quantity".into(),
            },
            objects_scanned: 12,
            rows: 3,
            ..QueryProfile::default()
        };
        let rows = prof.rows();
        assert!(rows
            .iter()
            .any(|(k, v)| k == "strategy" && v.contains("index probe")));
        assert!(rows.iter().any(|(k, v)| k == "rows" && v == "3"));
    }

    #[test]
    fn gauge_tracks_levels() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.dec();
        g.dec(); // saturates at zero
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn server_telemetry_snapshot_rows_and_reset() {
        let tel = ServerTelemetry::default();
        tel.accepted.add(3);
        tel.rejected_admission.inc();
        tel.requests.add(10);
        tel.bytes_in.add(100);
        tel.request_latency.record_ns(5_000);
        tel.active_connections.inc();
        tel.max_concurrent.observe(2);
        let snap = tel.snapshot();
        assert_eq!(snap.accepted, 3);
        assert_eq!(snap.rejected_admission, 1);
        assert_eq!(snap.active_connections, 1);
        let rows = snap.rows();
        assert!(rows.iter().any(|(k, v)| k == "server.accepted" && v == "3"));
        assert!(rows
            .iter()
            .any(|(k, _)| k == "server.request_latency.p99_us"));
        let json = snap.to_json();
        assert!(json.contains("\"rejected_admission\":1"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        let before = snap;
        tel.requests.add(5);
        let d = tel.snapshot().delta(&before);
        assert_eq!(d.requests, 5);
        assert_eq!(d.accepted, 0);

        tel.reset();
        let snap = tel.snapshot();
        assert_eq!(snap.accepted, 0);
        assert_eq!(snap.requests, 0);
        // The live connection level survives a counter reset.
        assert_eq!(snap.active_connections, 1);
    }

    #[test]
    fn delta_saturates_when_reset_races_baseline() {
        // Regression: `.stats reset` between a baseline snapshot and the
        // delta must not wrap counters to ~u64::MAX — every delta path
        // (histogram counts included) saturates at zero instead.
        let tel = EngineTelemetry::default();
        tel.txn.begun.add(10);
        tel.txn.commit_latency.record_ns(1_000);
        tel.query.objects_scanned.add(100);
        let baseline = tel.snapshot(StorageSnapshot {
            pager_hits: 50,
            ..StorageSnapshot::default()
        });
        tel.reset(); // the race: counters go back to zero
        tel.txn.begun.add(2);
        let after = tel.snapshot(StorageSnapshot::default());
        let d = after.delta(&baseline);
        assert_eq!(d.txn.begun, 0, "2 - 10 saturates");
        assert_eq!(d.query.objects_scanned, 0);
        assert_eq!(d.storage.pager_hits, 0);
        assert_eq!(d.txn.commit_latency.count, 0);
        assert_eq!(d.txn.commit_latency.sum_ns, 0);

        let srv = ServerTelemetry::default();
        srv.requests.add(5);
        srv.request_latency.record_ns(10);
        let sbase = srv.snapshot();
        srv.reset();
        let sd = srv.snapshot().delta(&sbase);
        assert_eq!(sd.requests, 0);
        assert_eq!(sd.request_latency.count, 0);
    }

    #[test]
    fn telemetry_reset_zeroes_everything() {
        let tel = EngineTelemetry::default();
        tel.txn.begun.inc();
        tel.triggers.max_cascade_depth.observe(4);
        tel.triggers.cascade_exhausted.inc();
        tel.txn.commit_latency.record_ns(10);
        tel.sched.enqueued.add(5);
        tel.sched.dead_letters.inc();
        tel.sched.queue_high_water.observe(9);
        tel.sched.drain_lag.record_ns(10);
        tel.analyze.passes.inc();
        tel.analyze.errors.inc();
        tel.analyze.latency.record_ns(10);
        tel.reset();
        let s = tel.snapshot(StorageSnapshot::default());
        assert_eq!(s, TelemetrySnapshot::default());
    }

    #[test]
    fn sched_snapshot_delta_keeps_levels() {
        let tel = EngineTelemetry::default();
        tel.sched.enqueued.add(10);
        tel.sched.queue_depth.inc();
        let before = tel.snapshot(StorageSnapshot::default());
        tel.sched.enqueued.add(3);
        tel.sched.drained.add(12);
        tel.sched.queue_depth.inc();
        let d = tel.snapshot(StorageSnapshot::default()).delta(&before);
        assert_eq!(d.sched.enqueued, 3);
        assert_eq!(d.sched.drained, 12);
        assert_eq!(d.sched.queue_depth, 2, "gauge keeps its level");
    }
}
