//! The flight recorder: an always-on, bounded ring of request spans.
//!
//! Every request that enters the engine (from the shell, the server, or
//! an embedding) is assigned a [`TraceId`] and unwinds into a tree of
//! [`SpanRecord`]s — analyze, plan/execute, commit, trigger — written
//! into a fixed-size ring. The writer path takes no global lock: slot
//! reservation is a single `fetch_add` and publication touches only the
//! reserved slot, so recording stays cheap enough to leave on in
//! production. Old spans are overwritten ring-wise; memory is bounded by
//! construction.
//!
//! The current trace context travels in a thread-local (requests run
//! synchronously on one thread), installed with [`set_trace`] and
//! consumed by [`FlightRecorder::span`], which nests spans automatically:
//! a span opened while another is live becomes its child.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Default ring capacity: enough for a few hundred requests' spans.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// Identifies one end-to-end request across the wire and through every
/// engine layer. Zero means "untraced" (background work, recovery).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The untraced id.
    pub const NONE: TraceId = TraceId(0);

    /// Is this a real (client-minted) trace id?
    pub fn is_traced(&self) -> bool {
        self.0 != 0
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Which pipeline stage a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanStage {
    /// The whole request (root span): one shell line or wire frame.
    Request,
    /// The static-analysis pass.
    Analyze,
    /// Query planning + candidate enumeration (one query pass).
    Execute,
    /// A transaction's lifetime (begin → commit/abort).
    Txn,
    /// The commit pipeline (constraints, triggers, store batch, publish).
    Commit,
    /// One trigger firing (weak-coupled action transaction).
    Trigger,
    /// Decoupled-scheduler work: draining one queued event or evaluating
    /// a subscription predicate on a worker thread.
    Sched,
    /// WAL replay / catalog rebuild at open.
    Recovery,
}

impl SpanStage {
    /// Stable lowercase name (used in dumps and tests).
    pub fn name(&self) -> &'static str {
        match self {
            SpanStage::Request => "request",
            SpanStage::Analyze => "analyze",
            SpanStage::Execute => "execute",
            SpanStage::Txn => "txn",
            SpanStage::Commit => "commit",
            SpanStage::Trigger => "trigger",
            SpanStage::Sched => "sched",
            SpanStage::Recovery => "recovery",
        }
    }
}

impl std::fmt::Display for SpanStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One completed span in the flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The request this span belongs to (zero for background work).
    pub trace: TraceId,
    /// Recorder-unique span id (monotonically minted).
    pub span_id: u64,
    /// The enclosing span's id, zero for roots.
    pub parent: u64,
    /// Pipeline stage.
    pub stage: SpanStage,
    /// Human-oriented detail (statement, plan strategy, outcome).
    pub detail: String,
    /// Nanoseconds since the recorder's epoch at span open.
    pub start_ns: u64,
    /// Nanoseconds since the recorder's epoch at span close.
    pub end_ns: u64,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

// Thread-local trace context: (trace id, innermost open span id).
thread_local! {
    static CTX: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// The trace id installed on this thread ([`TraceId::NONE`] outside any
/// request).
pub fn current_trace() -> TraceId {
    TraceId(CTX.with(|c| c.get().0))
}

/// RAII guard restoring the previous thread trace context on drop.
#[derive(Debug)]
pub struct TraceCtx {
    prev: (u64, u64),
}

/// Install `id` as this thread's trace (with no open parent span) for the
/// guard's lifetime. Nested installs stack.
pub fn set_trace(id: TraceId) -> TraceCtx {
    let prev = CTX.with(|c| c.replace((id.0, 0)));
    TraceCtx { prev }
}

impl Drop for TraceCtx {
    fn drop(&mut self) {
        CTX.with(|c| c.set(self.prev));
    }
}

/// The bounded span ring. One instance lives in each `Database`; the
/// server shares it through the database handle.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<SpanRecord>>>,
    next_slot: AtomicUsize,
    next_span: AtomicU64,
    next_trace: AtomicU64,
    enabled: AtomicBool,
    epoch: Instant,
}

fn unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // The recorder must stay readable from a panic hook, so a slot
    // poisoned by a panicking writer is still dumped.
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` spans (minimum 16).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(16);
        // Seed trace minting with wall time so ids from successive
        // processes rarely collide (uniqueness is a convenience, not a
        // correctness requirement).
        let seed = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next_slot: AtomicUsize::new(0),
            next_span: AtomicU64::new(1),
            next_trace: AtomicU64::new((seed << 20) | 1),
            enabled: AtomicBool::new(true),
            epoch: Instant::now(),
        }
    }

    /// Ring capacity in spans.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.next_slot.load(Ordering::Relaxed) as u64
    }

    /// Is span recording on? (Trace-context plumbing still works while
    /// off; only ring writes are skipped.)
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Toggle span recording (the overhead bench measures the delta).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Nanoseconds since the recorder was created. Monotonic — span
    /// timestamps from one recorder order consistently.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Mint a fresh trace id (for local shells; remote clients mint their
    /// own and carry them over the wire).
    pub fn mint_trace(&self) -> TraceId {
        TraceId(self.next_trace.fetch_add(1, Ordering::Relaxed))
    }

    /// Append a completed span. Lock scope is the one reserved slot.
    pub fn record(&self, span: SpanRecord) {
        if !self.is_enabled() {
            return;
        }
        let n = self.next_slot.fetch_add(1, Ordering::Relaxed);
        *unpoisoned(&self.slots[n % self.slots.len()]) = Some(span);
    }

    /// Open a span at the current thread's trace context. The span
    /// becomes the context's innermost parent until the guard drops,
    /// which records it (children therefore appear before their parent
    /// in the ring, but ids and timestamps reconstruct the tree).
    pub fn span(self: &Arc<Self>, stage: SpanStage, detail: impl Into<String>) -> SpanGuard {
        let (trace, parent) = CTX.with(|c| c.get());
        let span_id = self.next_span.fetch_add(1, Ordering::Relaxed);
        CTX.with(|c| c.set((trace, span_id)));
        SpanGuard {
            rec: Arc::clone(self),
            trace,
            span_id,
            parent,
            stage,
            detail: detail.into(),
            start_ns: self.now_ns(),
        }
    }

    /// Every live span, oldest first (by start time, then id).
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = self
            .slots
            .iter()
            .filter_map(|s| unpoisoned(s).clone())
            .collect();
        out.sort_by_key(|s| (s.start_ns, s.span_id));
        out
    }

    /// The spans of one trace, oldest first.
    pub fn for_trace(&self, id: TraceId) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = self
            .slots
            .iter()
            .filter_map(|s| unpoisoned(s).clone())
            .filter(|s| s.trace == id)
            .collect();
        out.sort_by_key(|s| (s.start_ns, s.span_id));
        out
    }

    /// Trace ids still present in the ring, most recent first.
    pub fn recent_traces(&self, limit: usize) -> Vec<TraceId> {
        let mut spans = self.snapshot();
        spans.reverse();
        let mut seen = Vec::new();
        for s in spans {
            if s.trace.is_traced() && !seen.contains(&s.trace) {
                seen.push(s.trace);
                if seen.len() == limit {
                    break;
                }
            }
        }
        seen
    }

    /// Install a panic hook that dumps the recorder's most recent spans
    /// to stderr before the previous hook runs. Intended for binaries
    /// (`ode-server`), not libraries.
    pub fn install_panic_dump(rec: &Arc<FlightRecorder>) {
        let rec = Arc::clone(rec);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let spans = rec.snapshot();
            let tail = &spans[spans.len().saturating_sub(32)..];
            eprintln!("flight recorder ({} of {} spans):", tail.len(), spans.len());
            eprint!("{}", render_spans(tail));
            prev(info);
        }));
    }
}

/// An open span; records itself on drop and restores the parent context.
#[derive(Debug)]
pub struct SpanGuard {
    rec: Arc<FlightRecorder>,
    trace: u64,
    span_id: u64,
    parent: u64,
    stage: SpanStage,
    detail: String,
    start_ns: u64,
}

impl SpanGuard {
    /// Replace the detail recorded at close (e.g. the chosen plan, the
    /// commit outcome), known only after the work ran.
    pub fn set_detail(&mut self, detail: impl Into<String>) {
        self.detail = detail.into();
    }

    /// The span's id (for correlating externally).
    pub fn span_id(&self) -> u64 {
        self.span_id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        CTX.with(|c| c.set((self.trace, self.parent)));
        let end_ns = self.rec.now_ns();
        self.rec.record(SpanRecord {
            trace: TraceId(self.trace),
            span_id: self.span_id,
            parent: self.parent,
            stage: self.stage,
            detail: std::mem::take(&mut self.detail),
            start_ns: self.start_ns,
            end_ns,
        });
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.1}us", ns as f64 / 1e3)
    }
}

/// Render spans as an indented tree, one line per span:
/// `stage  @offset +duration  detail`, grouped under their trace.
pub fn render_spans(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    if spans.is_empty() {
        out.push_str("(no spans)\n");
        return out;
    }
    // Children of each span, in start order (spans is already sorted).
    let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
    let mut trace_of_last = None;
    let mut base_ns = 0u64;
    // Roots: parent missing from the set (zero or overwritten).
    fn emit(out: &mut String, spans: &[SpanRecord], node: &SpanRecord, depth: usize, base_ns: u64) {
        out.push_str(&format!(
            "{:indent$}{:<8} @{} +{}  {}\n",
            "",
            node.stage.name(),
            fmt_ns(node.start_ns.saturating_sub(base_ns)),
            fmt_ns(node.duration_ns()),
            node.detail,
            indent = 2 + depth * 2,
        ));
        for child in spans.iter().filter(|s| s.parent == node.span_id) {
            emit(out, spans, child, depth + 1, base_ns);
        }
    }
    for s in spans {
        if trace_of_last != Some(s.trace) {
            trace_of_last = Some(s.trace);
            base_ns = s.start_ns;
            if s.trace.is_traced() {
                out.push_str(&format!("trace {}\n", s.trace));
            } else {
                out.push_str("trace (background)\n");
            }
        }
        if !ids.contains(&s.parent) {
            emit(&mut out, spans, s, 0, base_ns);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_and_bounds_memory() {
        let rec = FlightRecorder::with_capacity(16);
        for i in 0..40u64 {
            rec.record(SpanRecord {
                trace: TraceId(1),
                span_id: i,
                parent: 0,
                stage: SpanStage::Request,
                detail: String::new(),
                start_ns: i,
                end_ns: i + 1,
            });
        }
        assert_eq!(rec.recorded(), 40);
        let spans = rec.snapshot();
        assert_eq!(spans.len(), 16);
        // Only the newest 16 survive.
        assert!(spans.iter().all(|s| s.span_id >= 24));
    }

    #[test]
    fn span_guard_nests_and_restores_context() {
        let rec = Arc::new(FlightRecorder::with_capacity(64));
        let trace = rec.mint_trace();
        {
            let _ctx = set_trace(trace);
            let _root = rec.span(SpanStage::Request, "line");
            {
                let mut child = rec.span(SpanStage::Analyze, "");
                child.set_detail("ok");
            }
            {
                let _child = rec.span(SpanStage::Commit, "commit");
            }
        }
        assert_eq!(current_trace(), TraceId::NONE);
        let spans = rec.for_trace(trace);
        assert_eq!(spans.len(), 3);
        let root = spans
            .iter()
            .find(|s| s.stage == SpanStage::Request)
            .unwrap();
        let analyze = spans
            .iter()
            .find(|s| s.stage == SpanStage::Analyze)
            .unwrap();
        let commit = spans.iter().find(|s| s.stage == SpanStage::Commit).unwrap();
        assert_eq!(root.parent, 0);
        assert_eq!(analyze.parent, root.span_id);
        assert_eq!(commit.parent, root.span_id);
        assert_eq!(analyze.detail, "ok");
        // Timestamps are monotonic within the trace.
        assert!(root.start_ns <= analyze.start_ns);
        assert!(analyze.start_ns <= commit.start_ns);
        for s in &spans {
            assert!(s.end_ns >= s.start_ns);
        }
    }

    #[test]
    fn disabled_recorder_drops_spans_but_keeps_context() {
        let rec = Arc::new(FlightRecorder::with_capacity(16));
        rec.set_enabled(false);
        let trace = rec.mint_trace();
        {
            let _ctx = set_trace(trace);
            let _s = rec.span(SpanStage::Request, "x");
        }
        assert!(rec.for_trace(trace).is_empty());
        assert_eq!(current_trace(), TraceId::NONE);
        rec.set_enabled(true);
    }

    #[test]
    fn recent_traces_newest_first() {
        let rec = Arc::new(FlightRecorder::with_capacity(64));
        let (a, b) = (rec.mint_trace(), rec.mint_trace());
        for t in [a, b] {
            let _ctx = set_trace(t);
            let _s = rec.span(SpanStage::Request, "");
        }
        assert_eq!(rec.recent_traces(8), vec![b, a]);
    }

    #[test]
    fn render_builds_a_tree() {
        let rec = Arc::new(FlightRecorder::with_capacity(64));
        let trace = rec.mint_trace();
        {
            let _ctx = set_trace(trace);
            let _root = rec.span(SpanStage::Request, "update …");
            let _child = rec.span(SpanStage::Execute, "stockitem via index probe");
        }
        let text = render_spans(&rec.for_trace(trace));
        assert!(text.contains("request"), "{text}");
        assert!(text.contains("    execute"), "child indented: {text}");
        assert!(text.contains("index probe"), "{text}");
    }
}
