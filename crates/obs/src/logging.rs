//! Level-filtered structured logging: one JSON object per line on
//! stderr.
//!
//! Replaces the serving layer's ad-hoc `eprintln!`. Each line carries a
//! wall-clock timestamp, a severity, the emitting component, a
//! human-oriented `msg`, and any extra key/value fields. The `msg` text
//! keeps its old prose form so line-oriented consumers (the CI smoke
//! jobs grep for "listening on") continue to work against the JSON.
//!
//! Dependency-free by design: the encoder handles only what log lines
//! need (string escaping); there is no parser here.

use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// The process is degraded or about to exit.
    Error = 0,
    /// Something unexpected that the process survives.
    Warn = 1,
    /// Lifecycle events (listening, draining, connections).
    Info = 2,
    /// Per-request noise; off by default.
    Debug = 3,
}

impl LogLevel {
    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }

    /// Parse `error|warn|info|debug` (case-insensitive).
    pub fn parse(s: &str) -> Option<LogLevel> {
        Some(match s.to_ascii_lowercase().as_str() {
            "error" => LogLevel::Error,
            "warn" | "warning" => LogLevel::Warn,
            "info" => LogLevel::Info,
            "debug" => LogLevel::Debug,
            _ => return None,
        })
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Info as u8);

/// Set the global threshold; lines above it are dropped.
pub fn set_level(level: LogLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current global threshold.
pub fn level() -> LogLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => LogLevel::Error,
        1 => LogLevel::Warn,
        2 => LogLevel::Info,
        _ => LogLevel::Debug,
    }
}

/// Would a line at `l` currently be emitted?
pub fn enabled(l: LogLevel) -> bool {
    l <= level()
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Render one log line (exposed separately so tests can check the shape
/// without capturing stderr).
pub fn format_line(level: LogLevel, component: &str, msg: &str, fields: &[(&str, &str)]) -> String {
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let mut out = String::with_capacity(96 + msg.len());
    out.push_str(&format!(
        "{{\"ts_ms\":{ts_ms},\"level\":\"{}\",\"component\":\"",
        level.name()
    ));
    escape_into(&mut out, component);
    out.push_str("\",\"msg\":\"");
    escape_into(&mut out, msg);
    out.push('"');
    for (k, v) in fields {
        out.push_str(",\"");
        escape_into(&mut out, k);
        out.push_str("\":\"");
        escape_into(&mut out, v);
        out.push('"');
    }
    out.push('}');
    out
}

/// Emit one structured line to stderr if `level` passes the threshold.
pub fn log(level: LogLevel, component: &str, msg: &str, fields: &[(&str, &str)]) {
    if !enabled(level) {
        return;
    }
    eprintln!("{}", format_line(level, component, msg, fields));
}

/// [`log`] at error severity.
pub fn error(component: &str, msg: &str, fields: &[(&str, &str)]) {
    log(LogLevel::Error, component, msg, fields);
}

/// [`log`] at warn severity.
pub fn warn(component: &str, msg: &str, fields: &[(&str, &str)]) {
    log(LogLevel::Warn, component, msg, fields);
}

/// [`log`] at info severity.
pub fn info(component: &str, msg: &str, fields: &[(&str, &str)]) {
    log(LogLevel::Info, component, msg, fields);
}

/// [`log`] at debug severity.
pub fn debug(component: &str, msg: &str, fields: &[(&str, &str)]) {
    log(LogLevel::Debug, component, msg, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(LogLevel::Error < LogLevel::Debug);
        assert_eq!(LogLevel::parse("WARN"), Some(LogLevel::Warn));
        assert_eq!(LogLevel::parse("debug"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::parse("loud"), None);
    }

    #[test]
    fn format_line_is_json_shaped() {
        let line = format_line(
            LogLevel::Info,
            "server",
            "listening on 127.0.0.1:7340",
            &[("addr", "127.0.0.1:7340")],
        );
        assert!(line.starts_with("{\"ts_ms\":"), "{line}");
        assert!(line.contains("\"level\":\"info\""), "{line}");
        assert!(
            line.contains("\"msg\":\"listening on 127.0.0.1:7340\""),
            "{line}"
        );
        assert!(line.contains("\"addr\":\"127.0.0.1:7340\""), "{line}");
        assert!(line.ends_with('}'), "{line}");
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }

    #[test]
    fn escaping_handles_quotes_and_control_chars() {
        let line = format_line(LogLevel::Warn, "c", "say \"hi\"\nnow", &[("k", "a\\b")]);
        assert!(line.contains("say \\\"hi\\\"\\nnow"), "{line}");
        assert!(line.contains("a\\\\b"), "{line}");
    }

    #[test]
    fn threshold_filters() {
        set_level(LogLevel::Warn);
        assert!(enabled(LogLevel::Error));
        assert!(enabled(LogLevel::Warn));
        assert!(!enabled(LogLevel::Info));
        set_level(LogLevel::Info);
        assert!(enabled(LogLevel::Info));
        assert!(!enabled(LogLevel::Debug));
    }
}
