//! Vendored stand-in for the `criterion` crate (offline build).
//!
//! The workspace routes the `criterion` dev-dependency here. It provides
//! the measurement-loop API surface Ode's benches use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! median-of-samples harness instead of criterion's full statistics. Each
//! benchmark prints one line:
//!
//! ```text
//! group/name/param        median 12.345 µs   (11 samples)
//! ```

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(900),
        }
    }
}

impl Criterion {
    /// No-op (this harness never plots); kept for API compatibility.
    pub fn without_plots(self) -> Self {
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent running the closure before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Upper bound on total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Identifies one benchmark within a group (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose from a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// Things usable as a benchmark identifier (a [`BenchmarkId`] or a name).
pub trait IntoBenchmarkId {
    /// Convert into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.into() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Units-of-work annotation; used to report a rate next to the median.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A set of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a work rate.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.into_benchmark_id(), |b| f(b));
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl IntoBenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(id.into_benchmark_id(), |b| f(b, input));
    }

    /// Finish the group (line-oriented output needs no summary step).
    pub fn finish(self) {}

    fn run_one(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            sample_size: self.criterion.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id.id);
        match bencher.median_ns() {
            Some(median) => {
                let rate = match self.throughput {
                    Some(Throughput::Elements(n)) if median > 0.0 => {
                        format!("   {:.0} elem/s", n as f64 / (median * 1e-9))
                    }
                    Some(Throughput::Bytes(n)) if median > 0.0 => {
                        format!("   {:.0} B/s", n as f64 / (median * 1e-9))
                    }
                    _ => String::new(),
                };
                println!(
                    "{label:<48} median {:>10.3} µs   ({} samples){rate}",
                    median / 1e3,
                    bencher.samples.len()
                );
            }
            None => println!("{label:<48} (no samples)"),
        }
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `f`, collecting up to `sample_size` samples within the
    /// measurement budget. The closure's return value is passed through
    /// `black_box` so its computation cannot be optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_deadline = Instant::now() + self.warm_up;
        loop {
            std_black_box(f());
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        // Measurement: one sample per closure call, budget-bounded.
        let start = Instant::now();
        while self.samples.len() < self.sample_size {
            let t = Instant::now();
            std_black_box(f());
            self.samples.push(t.elapsed().as_nanos() as f64);
            if start.elapsed() >= self.measurement {
                break;
            }
        }
    }

    fn median_ns(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        Some(sorted[sorted.len() / 2])
    }
}

/// Declare a group-runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; `cargo test --benches` passes
            // `--test`, where criterion runs a single quick check pass. This
            // harness is cheap either way, so both run the groups.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(10));
        let mut runs = 0u64;
        g.bench_with_input(BenchmarkId::new("count", 10), &10u64, |b, n| {
            b.iter(|| {
                runs += 1;
                black_box(n * 2)
            })
        });
        g.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
        assert!(runs > 0);
    }
}
