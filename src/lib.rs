//! # Ode: Object Database and Environment
//!
//! A Rust reproduction of the object database described in Agrawal &
//! Gehani, *"ODE (Object Database and Environment): The Language and the
//! Data Model"*, SIGMOD 1989.
//!
//! This facade crate re-exports the three layers:
//!
//! * [`storage`] — the persistent-store substrate (pager, buffer pool,
//!   slotted heap files, write-ahead log),
//! * [`model`] — the O++ data model (classes with multiple inheritance,
//!   values, the expression language used for `suchthat`/`by`/constraints/
//!   trigger conditions),
//! * [`core`] — the engine: persistent objects and clusters, declarative
//!   iteration, fixpoint queries, versions, constraints, and triggers.
//!
//! See `README.md` for a tour and `examples/` for runnable programs that
//! mirror the paper's own examples.

pub use ode_core as core;
pub use ode_model as model;
pub use ode_storage as storage;

pub use ode_core::prelude;
